"""Conjugate gradient solver on top of library SpMV."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ReproError

#: Anything callable as ``y = op(x)`` (SparseFormat.spmv with y=None,
#: TunedSpMV, or a plain function).
LinearOperator = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: tuple[float, ...]


def _as_operator(a) -> tuple[LinearOperator, int]:
    if callable(a) and not hasattr(a, "spmv"):
        raise ReproError(
            "pass a SparseFormat/TunedSpMV, or use the operator form "
            "conjugate_gradient((op, n), b)"
        )
    if hasattr(a, "spmv"):
        m, n = a.shape
        if m != n:
            raise ReproError(f"CG needs a square matrix, got {a.shape}")
        return (lambda v: a.spmv(v)), n
    op, n = a
    return op, n


def conjugate_gradient(
    a,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Parameters
    ----------
    a : SparseFormat | TunedSpMV | (callable, n)
        The operator. Formats/tuned operators are used via ``spmv``;
        a ``(fn, n)`` pair supplies a bare matvec.
    b : ndarray
        Right-hand side.
    x0 : ndarray, optional
        Initial guess (default zero).
    tol : float
        Relative residual tolerance ``‖r‖/‖b‖``.
    max_iter : int, optional
        Default ``10 n``.
    """
    if hasattr(a, "matrix"):  # TunedSpMV
        a = a.matrix
    op, n = _as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ReproError(f"b has shape {b.shape}, expected ({n},)")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if max_iter is None:
        max_iter = 10 * n
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros(n), 0, 0.0, True, (0.0,))
    r = b - op(x)
    p = r.copy()
    rs = float(r @ r)
    history = [float(np.sqrt(rs))]
    for it in range(1, max_iter + 1):
        ap = op(p)
        denom = float(p @ ap)
        if denom <= 0:
            # Not SPD (or numerical breakdown): stop honestly.
            return CGResult(x, it - 1, history[-1], False, tuple(history))
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        history.append(float(np.sqrt(rs_new)))
        if np.sqrt(rs_new) <= tol * b_norm:
            return CGResult(x, it, float(np.sqrt(rs_new)), True,
                            tuple(history))
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CGResult(x, max_iter, history[-1], False, tuple(history))
