"""PageRank on a web-connectivity matrix (the webbase workload).

The suite's webbase-1M matrix is a web crawl's link matrix; its natural
application is PageRank — a long sequence of SpMVs with exactly the
short-row, power-law structure the paper identifies as SpMV's hard
case.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ReproError
from ..formats.convert import coo_to_csr
from ..formats.coo import COOMatrix


def transition_matrix(links: COOMatrix) -> COOMatrix:
    """The transposed transition matrix ``P^T`` of a link matrix.

    Edge i → j contributes at ``(j, i)`` with weight ``1/outdeg(i)``
    (absolute weights, so signed test matrices behave), making
    ``scores = P^T · scores`` a plain SpMV. Exposed so callers can
    pre-register ``P^T`` with the serving layer and drive
    :func:`pagerank` through its ``operator=`` hook.
    """
    m, n = links.shape
    if m != n:
        raise ReproError(f"PageRank needs a square matrix, got {links.shape}")
    w = np.abs(links.val)
    outdeg = np.zeros(n)
    np.add.at(outdeg, links.row, w)
    nonzero_out = outdeg[links.row] > 0
    return COOMatrix(
        (n, n),
        links.col[nonzero_out],
        links.row[nonzero_out],
        w[nonzero_out] / outdeg[links.row][nonzero_out],
    )


def pagerank(
    links: COOMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    operator: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[np.ndarray, int]:
    """PageRank scores of a (possibly weighted) link matrix.

    ``links[i, j] != 0`` is read as an edge i → j. The matrix is
    column-stochasticized internally; dangling pages distribute
    uniformly. When ``operator`` is given it must compute
    ``P^T · r`` for the matrix :func:`transition_matrix` returns (e.g.
    a tuned serve-layer :class:`~repro.serve.client.MatrixOperator`);
    otherwise a CSR materialization of ``P^T`` is built here.

    Returns ``(scores, iterations)``; scores sum to 1.
    """
    m, n = links.shape
    if m != n:
        raise ReproError(f"PageRank needs a square matrix, got {links.shape}")
    if n == 0:
        raise ReproError("empty graph")
    if not (0 < damping < 1):
        raise ReproError(f"damping must be in (0, 1), got {damping}")
    w = np.abs(links.val)
    outdeg = np.zeros(n)
    np.add.at(outdeg, links.row, w)
    if operator is None:
        pt_csr = coo_to_csr(transition_matrix(links))
        op: Callable[[np.ndarray], np.ndarray] = \
            lambda r: pt_csr.spmv(r)  # noqa: E731
    else:
        op = operator
    dangling = outdeg == 0
    r = np.full(n, 1.0 / n)
    for it in range(1, max_iter + 1):
        dangling_mass = float(r[dangling].sum())
        r_new = damping * (op(r) + dangling_mass / n) \
            + (1.0 - damping) / n
        delta = float(np.abs(r_new - r).sum())
        r = r_new
        if delta <= tol:
            return r / r.sum(), it
    return r / r.sum(), max_iter
