"""PageRank on a web-connectivity matrix (the webbase workload).

The suite's webbase-1M matrix is a web crawl's link matrix; its natural
application is PageRank — a long sequence of SpMVs with exactly the
short-row, power-law structure the paper identifies as SpMV's hard
case.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..formats.convert import coo_to_csr
from ..formats.coo import COOMatrix


def pagerank(
    links: COOMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> tuple[np.ndarray, int]:
    """PageRank scores of a (possibly weighted) link matrix.

    ``links[i, j] != 0`` is read as an edge i → j. The matrix is
    column-stochasticized internally; dangling pages distribute
    uniformly.

    Returns ``(scores, iterations)``; scores sum to 1.
    """
    m, n = links.shape
    if m != n:
        raise ReproError(f"PageRank needs a square matrix, got {links.shape}")
    if n == 0:
        raise ReproError("empty graph")
    if not (0 < damping < 1):
        raise ReproError(f"damping must be in (0, 1), got {damping}")
    # Build the transposed transition matrix P^T (so scores = P^T scores
    # is a plain SpMV): edge i->j contributes at (j, i) with weight
    # 1/outdeg(i). Use |weights| so signed test matrices behave.
    w = np.abs(links.val)
    outdeg = np.zeros(n)
    np.add.at(outdeg, links.row, w)
    nonzero_out = outdeg[links.row] > 0
    pt = COOMatrix(
        (n, n),
        links.col[nonzero_out],
        links.row[nonzero_out],
        w[nonzero_out] / outdeg[links.row][nonzero_out],
    )
    pt_csr = coo_to_csr(pt)
    dangling = outdeg == 0
    r = np.full(n, 1.0 / n)
    for it in range(1, max_iter + 1):
        dangling_mass = float(r[dangling].sum())
        r_new = damping * (pt_csr.spmv(r) + dangling_mass / n) \
            + (1.0 - damping) / n
        delta = float(np.abs(r_new - r).sum())
        r = r_new
        if delta <= tol:
            return r / r.sum(), it
    return r / r.sum(), max_iter
