"""Power iteration for the dominant eigenpair."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def power_method(
    a,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    seed: int = 0,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenvalue/vector of a square sparse matrix via repeated
    SpMV.

    Returns ``(eigenvalue, eigenvector, iterations)``.
    """
    if hasattr(a, "matrix"):  # TunedSpMV
        a = a.matrix
    m, n = a.shape
    if m != n:
        raise ReproError(f"power method needs a square matrix, got {a.shape}")
    if n == 0:
        raise ReproError("empty matrix")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for it in range(1, max_iter + 1):
        w = a.spmv(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v, it  # v in the null space: eigenvalue 0
        w /= norm
        lam_new = float(w @ a.spmv(w))
        if abs(lam_new - lam) <= tol * max(1.0, abs(lam_new)):
            return lam_new, w, it
        lam = lam_new
        v = w
    return lam, v, max_iter
