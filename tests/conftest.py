"""Shared fixtures: small random matrices with controlled structure."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.formats import COOMatrix


@pytest.fixture(scope="session", autouse=True)
def no_shm_leaks():
    """The dist tier owns POSIX shared-memory segments named after this
    process; every one must be unlinked by the time the suite ends."""
    from repro.dist.shm import SEGMENT_PREFIX

    pattern = f"/dev/shm/{SEGMENT_PREFIX}-*"
    yield
    leaked = glob.glob(pattern)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def random_coo(
    m: int, n: int, density: float, seed: int, *, blocky: bool = False
) -> COOMatrix:
    """A random COO matrix; ``blocky=True`` clusters entries in 2x2 tiles
    so register blocking has something to find."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(m * n * density))
    if blocky:
        nb = max(1, nnz // 4)
        br = rng.integers(0, max(1, m // 2), size=nb)
        bc = rng.integers(0, max(1, n // 2), size=nb)
        r = (br[:, None] * 2 + np.array([0, 0, 1, 1])[None, :]).ravel()
        c = (bc[:, None] * 2 + np.array([0, 1, 0, 1])[None, :]).ravel()
        r = np.minimum(r, m - 1)
        c = np.minimum(c, n - 1)
    else:
        r = rng.integers(0, m, size=nnz)
        c = rng.integers(0, n, size=nnz)
    v = rng.standard_normal(len(r))
    return COOMatrix((m, n), r, c, v)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=[(1, 1, 0.05), (37, 23, 0.1), (100, 100, 0.02),
                        (64, 256, 0.03), (200, 50, 0.08)])
def small_coo(request):
    m, n, d = request.param
    return random_coo(m, n, d, seed=m * 1000 + n)


@pytest.fixture
def blocky_coo():
    return random_coo(128, 128, 0.05, seed=7, blocky=True)
