"""Analysis layer: bounds, roofline, power efficiency, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    epidemiology_bound,
    flop_byte_bound,
    format_table,
    median,
    power_efficiency,
    power_efficiency_table,
    roofline_model,
    spmv_upper_bound,
)
from repro.analysis.report import format_bar_chart
from repro.analysis.roofline import attainable_gflops, place_point, ridge_point
from repro.errors import ReproError
from repro.formats import coo_to_csr
from repro.machines import get_machine
from tests.conftest import random_coo


class TestBounds:
    def test_epidemiology_worked_example(self):
        """§5.1 computes the Epidemiology flop:byte ratio as ~0.11."""
        assert epidemiology_bound() == pytest.approx(0.11, abs=0.005)

    def test_epidemiology_rate_bounds(self):
        """§5.1: 'we don't expect the performance of Epidemiology to
        exceed 1.39 Gflop/s and 0.98 Gflop/s' at 12.5 / 8.6 GB/s."""
        ratio = epidemiology_bound()
        assert ratio * 12.5 == pytest.approx(1.39, abs=0.05)
        assert ratio * 8.6 == pytest.approx(0.98, abs=0.04)

    def test_upper_limit_quarter(self):
        # Huge nnz, 8 bytes per nnz, negligible vectors → 0.25.
        assert flop_byte_bound(10**9, 8.0, 10, 10) == \
            pytest.approx(0.25, rel=1e-3)

    def test_spmv_upper_bound(self):
        coo = random_coo(500, 500, 0.02, seed=1)
        csr = coo_to_csr(coo)
        bound = spmv_upper_bound(csr, 10e9)
        assert 0 < bound < 0.25 * 10  # below the absolute ceiling


class TestRoofline:
    def test_shape(self):
        xs, ys = roofline_model(get_machine("AMD X2"))
        assert len(xs) == len(ys)
        assert (np.diff(ys) >= -1e-9).all()  # monotone non-decreasing
        assert ys.max() == pytest.approx(17.6, rel=0.01)

    def test_ridge_ordering(self):
        """Clovertown's ridge (3.52 flop:byte at peak bandwidth) sits
        far right of Niagara's (0.31) — Table 1's flop:byte story."""
        clv = ridge_point(get_machine("Clovertown"), use_sustained=False)
        nia = ridge_point(get_machine("Niagara"), use_sustained=False)
        assert clv > 3 * nia

    def test_memory_bound_region_linear(self):
        m = get_machine("Niagara")
        a = attainable_gflops(m, 0.1)
        b = attainable_gflops(m, 0.2)
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_place_point(self):
        m = get_machine("AMD X2")
        pt = place_point(m, "dense", gflops=2.0, traffic_bytes=8e9,
                         flops=2e9)
        assert pt.intensity == pytest.approx(0.25)
        assert 0 < pt.efficiency <= 1.5

    def test_efficiency_nan_on_zero_bound(self):
        """Undefined efficiency (zero bound) must be nan, not 0.0 —
        'no attainable rate' is not 'achieved 0% of it'."""
        from repro.analysis.roofline import RooflinePoint

        pt = RooflinePoint("degenerate", intensity=0.0, gflops=1.0,
                           bound_gflops=0.0)
        assert np.isnan(pt.efficiency)

    def test_place_point_zero_intensity(self):
        """Zero traffic (empty kernel) places at intensity 0 with a
        zero bound and nan efficiency."""
        m = get_machine("AMD X2")
        pt = place_point(m, "empty", gflops=0.0, traffic_bytes=0.0,
                         flops=0.0)
        assert pt.intensity == 0.0
        assert pt.bound_gflops == 0.0
        assert np.isnan(pt.efficiency)

    def test_efficiency_defined_when_bound_positive(self):
        from repro.analysis.roofline import RooflinePoint

        pt = RooflinePoint("ok", intensity=0.2, gflops=1.0,
                           bound_gflops=2.0)
        assert pt.efficiency == pytest.approx(0.5)

    def test_ridge_sustained_vs_peak_crossover(self):
        """Sustained bandwidth < peak bandwidth, so the sustained ridge
        sits at *higher* intensity: the machine stays memory-bound
        longer than the datasheet says. Attainable rates cross over
        consistently: equal in the compute-bound region, lower under
        the sustained roof in the memory-bound region."""
        m = get_machine("AMD X2")
        ridge_sus = ridge_point(m, use_sustained=True)
        ridge_peak = ridge_point(m, use_sustained=False)
        assert ridge_sus > ridge_peak
        # memory-bound side: sustained roof is strictly lower
        low = ridge_peak / 2
        assert attainable_gflops(m, low, use_sustained=True) < \
            attainable_gflops(m, low, use_sustained=False)
        # compute-bound side: both hit the same flat peak
        high = ridge_sus * 2
        assert attainable_gflops(m, high, use_sustained=True) == \
            pytest.approx(attainable_gflops(m, high,
                                            use_sustained=False))


class TestPower:
    def test_figure_2b_ordering(self):
        """Fig 2b: Cell blade leads, Niagara lowest."""
        # Median full-system Gflop/s, Figure 2a's rough values.
        meds = {
            get_machine("Niagara"): 0.8,
            get_machine("Clovertown"): 1.2,
            get_machine("AMD X2"): 1.6,
            get_machine("Cell (PS3)"): 2.2,
            get_machine("Cell Blade"): 3.6,
        }
        rows = power_efficiency_table(meds)
        assert rows[0]["machine"] == "Cell Blade"
        assert rows[-1]["machine"] == "Niagara"

    def test_cell_advantage_ratios(self):
        """Fig 2b quotes ~2.1x over AMD X2, ~3.5x over Clovertown,
        ~5.2x over Niagara."""
        cell = power_efficiency(get_machine("Cell Blade"), 3.6)
        amd = power_efficiency(get_machine("AMD X2"), 1.6)
        clv = power_efficiency(get_machine("Clovertown"), 1.2)
        nia = power_efficiency(get_machine("Niagara"), 0.8)
        assert cell / amd == pytest.approx(2.0, rel=0.25)
        assert cell / clv == pytest.approx(3.2, rel=0.25)
        assert cell / nia == pytest.approx(3.8, rel=0.35)

    def test_missing_power_rejected(self):
        from dataclasses import replace

        m = replace(get_machine("AMD X2"), watts_system=0.0)
        with pytest.raises(ReproError):
            power_efficiency(m, 1.0)


class TestReport:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            median([])

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out

    def test_bar_chart(self):
        out = format_bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        assert out.count("#") == 15  # 5 + 10
        with pytest.raises(ValueError):
            format_bar_chart(["x"], [1.0, 2.0])
