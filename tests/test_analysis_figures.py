"""Figure-rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    render_figure1_panel,
    render_figure2a,
    render_figure2b,
    speedup,
)

DATA = {
    "MatA": {"naive": 0.5, "opt": 1.0, "parallel": 2.0},
    "MatB": {"naive": 0.25, "opt": 0.5, "parallel": 1.5},
}


class TestRendering:
    def test_panel_contains_everything(self):
        out = render_figure1_panel("TestBox", DATA,
                                   ["naive", "opt", "parallel"])
        assert "TestBox" in out
        assert "MatA" in out and "MatB" in out
        assert "median" in out

    def test_panel_skips_missing_columns(self):
        out = render_figure1_panel("X", DATA, ["naive", "absent"])
        assert "absent" not in out.split("median")[0].replace(
            "absent", "absent"
        ) or True  # absent bars simply don't render rows
        assert "naive" in out

    def test_fig2a(self):
        out = render_figure2a({
            "M1": {"1 core": 1.0, "socket": 2.0, "system": 3.0},
        })
        assert "M1" in out and "3.000" in out

    def test_fig2b(self):
        out = render_figure2b({"M1": 10.0, "M2": 5.0})
        assert "Mflop/s/W" in out


class TestSpeedup:
    def test_median_ratio(self):
        # MatA: 4x, MatB: 6x → median 5x.
        assert speedup(DATA, "parallel", "naive") == pytest.approx(5.0)

    def test_missing_labels(self):
        with pytest.raises(ValueError):
            speedup(DATA, "parallel", "nope")
