"""Corpus round-trip, corruption tolerance, and version migration."""

from __future__ import annotations

import json

import pytest

from repro.autoplan.corpus import (
    CORPUS_VERSION,
    CorpusSample,
    PlanCorpus,
)
from repro.autoplan.features import FEATURE_VERSION
from repro.observe.metrics import get_registry


def sample(i: int = 0, **kw) -> CorpusSample:
    defaults = dict(
        features=(1.0 + i, 2.0, 3.0), label="bcsr-2x2",
        fmt="bcsr-2x2-16bit", backend="numpy", machine="AMD X2",
        fingerprint=f"fp{i}", n_threads=2, shards=0, weight=1.3,
        tuning_seconds=0.05, source="sweep",
    )
    defaults.update(kw)
    return CorpusSample(**defaults)


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        corpus = PlanCorpus(tmp_path / "c.jsonl")
        for i in range(3):
            corpus.append(sample(i))
        loaded = corpus.load()
        assert len(loaded) == 3
        assert loaded[0] == sample(0)
        assert loaded[2].fingerprint == "fp2"

    def test_records_stamp_versions(self, tmp_path):
        corpus = PlanCorpus(tmp_path / "c.jsonl")
        corpus.append(sample())
        rec = json.loads((tmp_path / "c.jsonl").read_text())
        assert rec["v"] == CORPUS_VERSION
        assert rec["feature_version"] == FEATURE_VERSION
        assert "repro_version" in rec

    def test_missing_file_loads_empty(self, tmp_path):
        assert PlanCorpus(tmp_path / "absent.jsonl").load() == []

    def test_len(self, tmp_path):
        corpus = PlanCorpus(tmp_path / "c.jsonl")
        assert len(corpus) == 0
        corpus.append(sample())
        assert len(corpus) == 1


class TestCorruptionTolerance:
    def test_torn_line_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "c.jsonl"
        corpus = PlanCorpus(path)
        corpus.append(sample(0))
        corpus.append(sample(1))
        text = path.read_text()
        # a crash mid-append leaves a torn final line
        path.write_text(text + text.splitlines()[0][: len(text) // 4])
        reg = get_registry()
        before = reg.counter("autoplan.corpus_skipped", reason="corrupt")
        loaded = corpus.load()
        assert len(loaded) == 2
        assert reg.counter("autoplan.corpus_skipped",
                           reason="corrupt") == before + 1

    @pytest.mark.parametrize("junk", [
        "not json at all",
        '"a bare string"',
        "[1, 2, 3]",
        '{"v": 2}',          # object but missing required keys
    ])
    def test_junk_lines_skipped(self, tmp_path, junk):
        path = tmp_path / "c.jsonl"
        corpus = PlanCorpus(path)
        corpus.append(sample())
        with open(path, "a") as f:
            f.write(junk + "\n")
        assert len(corpus.load()) == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.jsonl"
        corpus = PlanCorpus(path)
        corpus.append(sample())
        with open(path, "a") as f:
            f.write("\n\n")
        corpus.append(sample(1))
        assert len(corpus.load()) == 2


class TestVersionMigration:
    def test_v1_records_migrate_deterministically(self, tmp_path):
        path = tmp_path / "c.jsonl"
        v1 = {
            "v": 1, "features": [1.0, 2.0, 3.0], "label": "csr",
            "format": "csr-1x1-32bit",   # v1 key name
            "backend": "numpy", "machine": "AMD X2",
            "fingerprint": "old", "n_threads": 1, "shards": 0,
            "weight": 1.1, "tuning_seconds": 0.2,
            "feature_version": FEATURE_VERSION,
        }
        path.write_text(json.dumps(v1) + "\n")
        first = PlanCorpus(path).load()
        second = PlanCorpus(path).load()
        assert first == second            # deterministic
        (s,) = first
        assert s.fmt == "csr-1x1-32bit"   # format -> fmt
        assert s.source == "sweep"        # v1 had no feedback loop

    def test_unknown_future_version_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        rec = sample().to_record()
        rec["v"] = CORPUS_VERSION + 1
        path.write_text(json.dumps(rec) + "\n")
        reg = get_registry()
        before = reg.counter("autoplan.corpus_skipped", reason="stale")
        assert PlanCorpus(path).load() == []
        assert reg.counter("autoplan.corpus_skipped",
                           reason="stale") == before + 1

    def test_feature_version_mismatch_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        rec = sample().to_record()
        rec["feature_version"] = FEATURE_VERSION + 1
        path.write_text(json.dumps(rec) + "\n")
        assert PlanCorpus(path).load() == []

    def test_mixed_file_keeps_only_valid(self, tmp_path):
        path = tmp_path / "c.jsonl"
        corpus = PlanCorpus(path)
        corpus.append(sample(0))
        stale = sample(1).to_record()
        stale["v"] = 99
        with open(path, "a") as f:
            f.write(json.dumps(stale) + "\n")
            f.write("garbage\n")
        corpus.append(sample(2))
        loaded = corpus.load()
        assert [s.fingerprint for s in loaded] == ["fp0", "fp2"]
