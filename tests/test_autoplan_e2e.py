"""End-to-end learned plan selection (the ISSUE's acceptance tests).

A corpus is grown by sweeping a small family of structurally similar
matrices; a model trained on it must then route a *new* member of the
family down the predict path (no sweep spans, plan within 15% of the
fully-tuned plan's measured SpMV time) while an out-of-distribution
matrix falls back to the sweep, and a crashing predictor never breaks
registration.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.autoplan import AutoPlanner, train_model
from repro.autoplan.corpus import CorpusSample
from repro.autoplan.features import extract_features
from repro.autoplan.predictor import plan_with_autoplan
from repro.autoplan.sweep import run_sweep
from repro.core import SpmvEngine
from repro.formats import COOMatrix
from repro.kernels.registry import spmv_backend
from repro.machines import get_machine
from repro.matrices import fem_blocked_matrix, scattered_matrix
from repro.observe import trace
from repro.observe.metrics import get_registry
from repro.serve import MatrixRegistry, PlanCache


def family_member(seed: int) -> COOMatrix:
    """One member of a blocky FEM-like family (BCSR territory)."""
    return fem_blocked_matrix(240, 4, 24, bandwidth_frac=0.1, seed=seed)


def scatter_member(seed: int) -> COOMatrix:
    """One member of a scattered family (CSR territory)."""
    return scattered_matrix(300, 8, seed=seed)


@pytest.fixture(scope="module")
def trained_planner(tmp_path_factory):
    """Corpus over both families with pinned labels, model saved.

    Features are extracted from real matrices, but the labels are
    pinned (FEM family -> "csr", scatter family -> "heuristic") so the
    trained model — and every test below — is deterministic. Measured
    sweep labels are timing-noisy on matrices this small; the
    statistical accuracy of sweep-labeled training is exercised by
    ``examples/autoplan_smoke.py`` instead.
    """
    root = tmp_path_factory.mktemp("autoplan")
    planner = AutoPlanner(root)
    for seed in range(6):
        for coo, label in [(family_member(seed), "csr"),
                           (scatter_member(seed), "heuristic")]:
            fv = extract_features(coo)
            planner.corpus.append(CorpusSample(
                features=tuple(fv.to_list()), label=label,
                fmt="csr-1x1-16bit", backend="numpy", machine="AMD X2",
                fingerprint=f"{label}-{seed}", n_threads=2, shards=0,
                weight=1.3, tuning_seconds=0.02, source="sweep",
            ))
    samples = planner.corpus.load()
    assert len(samples) == 12
    train_model(samples, k=3).save(planner.model_path)
    planner.reload()
    return planner


class TestPredictPath:
    def test_similar_matrix_skips_sweep(self, trained_planner):
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = family_member(seed=100)   # unseen family member
        tracer = trace.enable()
        try:
            outcome = plan_with_autoplan(
                engine, coo, n_threads=2, mode="auto",
                planner=trained_planner,
            )
        finally:
            trace.disable()
        assert outcome.path == "predict"
        assert outcome.confidence >= trained_planner.confidence_threshold
        assert "autoplan.sweep" not in tracer.names()
        assert "autoplan.sweep.candidate" not in tracer.names()

    def test_predicted_plan_within_15pct_of_tuned(self, trained_planner):
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = family_member(seed=101)
        outcome = plan_with_autoplan(
            engine, coo, n_threads=2, mode="auto",
            planner=trained_planner,
        )
        assert outcome.path == "predict"
        tuned = run_sweep(engine, coo, n_threads=2, iters=3)

        def best_time(plan) -> float:
            # Best-of-25: at the ~100µs scale of this matrix a small
            # rep count leaves enough scheduler noise in the minimum
            # to blow the 15% margin on loaded CI hosts.
            matrix = plan.materialize(coo)
            x = np.random.default_rng(0).standard_normal(coo.ncols)
            spmv_backend(matrix, x)     # warm
            best = float("inf")
            for _ in range(25):
                t0 = time.perf_counter()
                spmv_backend(matrix, x)
                best = min(best, time.perf_counter() - t0)
            return best

        t_pred = best_time(outcome.plan)
        t_tuned = best_time(tuned.plan)
        assert t_pred <= t_tuned * 1.15

    def test_registry_cold_registration_takes_predict_path(
        self, trained_planner, tmp_path,
    ):
        registry = MatrixRegistry(
            get_machine("AMD X2"), n_threads=2, plan_mode="auto",
            autoplanner=trained_planner,
            plan_cache=PlanCache(tmp_path / "plans",
                                 corpus=trained_planner.corpus),
        )
        reg = get_registry()
        hits_before = reg.counter("autoplan.predictions", outcome="hit")
        entry = registry.register(family_member(seed=102))
        assert entry.plan_path == "predict"
        assert entry.predicted is True
        assert entry.autoplan_label
        assert reg.counter("autoplan.predictions",
                           outcome="hit") == hits_before + 1
        # registration latency is accounted per path
        assert reg.histogram("autoplan.registration_seconds",
                             path="predict").count >= 1


class TestFallback:
    def test_dissimilar_matrix_falls_back(self, trained_planner):
        engine = SpmvEngine(get_machine("AMD X2"))
        # far outside both training families: one dense row, huge
        # aspect ratio
        n = 4000
        ood = COOMatrix((2, n), np.zeros(n, dtype=np.int64),
                        np.arange(n), np.ones(n))
        reg = get_registry()
        before = reg.counter("autoplan.predictions", outcome="fallback")
        outcome = plan_with_autoplan(
            engine, ood, n_threads=1, mode="auto",
            planner=trained_planner,
        )
        assert outcome.path == "tune"
        assert outcome.fallback_reason == "low_confidence"
        assert reg.counter("autoplan.predictions",
                           outcome="fallback") == before + 1

    def test_no_model_falls_back(self, tmp_path):
        engine = SpmvEngine(get_machine("AMD X2"))
        planner = AutoPlanner(tmp_path)   # empty dir: no artifact
        outcome = plan_with_autoplan(
            engine, family_member(0), n_threads=1, mode="predict",
            planner=planner,
        )
        assert outcome.path == "tune"
        assert outcome.fallback_reason == "no_model"

    def test_model_trained_after_startup_is_picked_up(self, tmp_path):
        """A long-running planner notices a newly trained artifact
        (offline `autoplan train`) without an explicit reload()."""
        planner = AutoPlanner(tmp_path)
        fv = extract_features(family_member(0))
        assert planner.predict(fv) is None      # caches "no model"
        corpus = [CorpusSample(
            features=tuple(extract_features(family_member(s)).to_list()),
            label="csr", fmt="csr-1x1-16bit", backend="numpy",
            machine="AMD X2", fingerprint=f"f{s}", n_threads=2,
            shards=0, weight=1.2, tuning_seconds=0.01, source="sweep",
        ) for s in range(1, 5)]
        train_model(corpus, k=3).save(planner.model_path)
        pred = planner.predict(fv)              # no reload() call
        assert pred is not None and pred.label == "csr"

    def test_predictor_crash_degrades_to_sweep(self, trained_planner,
                                               monkeypatch, tmp_path):
        """Acceptance: prediction never crashes registration."""
        monkeypatch.setattr(
            type(trained_planner), "predict",
            lambda self, fv: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        registry = MatrixRegistry(
            get_machine("AMD X2"), n_threads=2, plan_mode="auto",
            autoplanner=trained_planner,
            plan_cache=PlanCache(tmp_path / "plans"),
        )
        reg = get_registry()
        errs_before = reg.counter("autoplan.predict_errors")
        entry = registry.register(family_member(seed=103))
        assert entry.plan_path == "tune"    # swept, not crashed
        assert reg.counter("autoplan.predict_errors") == errs_before + 1


class TestFeedbackLoop:
    def test_retune_confirms_or_overrides_and_feeds_corpus(
        self, trained_planner, tmp_path,
    ):
        planner = trained_planner
        cache = PlanCache(tmp_path / "plans", corpus=planner.corpus)
        registry = MatrixRegistry(
            get_machine("AMD X2"), n_threads=2, plan_mode="auto",
            autoplanner=planner, plan_cache=cache,
        )
        coo = family_member(seed=104)
        entry = registry.register(coo)
        assert entry.predicted is True
        n_before = len(planner.corpus.load())
        registry.retune(entry.fingerprint, coo)
        assert entry.predicted is False
        samples = planner.corpus.load()
        assert len(samples) == n_before + 1
        assert samples[-1].source == "feedback"

    def test_serve_client_background_retune_drains(self, tmp_path):
        from repro.observe.hub import uninstall_hub
        from repro.serve.client import ServeClient

        client = ServeClient(
            plan_cache_dir=tmp_path / "cache", plan_mode="auto",
        )
        try:
            coo = family_member(seed=0)
            entry = client.register(coo)     # no model yet: tune path
            assert entry.plan_path == "tune"
            client.drain()                   # waits for any retunes
            assert len(client.autoplanner.corpus.load()) == 1
        finally:
            client.close()
            uninstall_hub()
