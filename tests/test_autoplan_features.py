"""Feature extraction: fixed order, versioning, degenerate inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoplan.features import (
    FEATURE_NAMES,
    FEATURE_VERSION,
    extract_features,
)
from repro.formats import COOMatrix
from repro.matrices import generate
from tests.conftest import random_coo


class TestShapeAndOrder:
    def test_fixed_order_and_version(self):
        fv = extract_features(random_coo(100, 100, 0.05, seed=0))
        assert fv.version == FEATURE_VERSION
        assert fv.names == FEATURE_NAMES
        assert fv.values.shape == (len(FEATURE_NAMES),)

    def test_deterministic(self):
        coo = random_coo(80, 120, 0.04, seed=1)
        a = extract_features(coo).values
        b = extract_features(coo).values
        np.testing.assert_array_equal(a, b)

    def test_as_dict_matches_order(self):
        fv = extract_features(random_coo(50, 50, 0.1, seed=2))
        assert list(fv.as_dict()) == list(FEATURE_NAMES)
        assert fv.to_list() == list(fv.values)


class TestDegenerateInputsNeverNan:
    """The ISSUE's divide-by-zero clause: empty matrix, zero rows,
    single row — every feature stays finite."""

    @pytest.mark.parametrize("shape", [(0, 0), (0, 10), (10, 0),
                                       (5, 5), (1, 1)])
    def test_empty_matrices(self, shape):
        fv = extract_features(COOMatrix.empty(shape))
        assert np.isfinite(fv.values).all()

    def test_single_row(self):
        coo = COOMatrix((1, 10), [0, 0, 0], [1, 4, 7], [1.0, 2.0, 3.0])
        fv = extract_features(coo)
        assert np.isfinite(fv.values).all()

    def test_single_entry(self):
        fv = extract_features(COOMatrix((1, 1), [0], [0], [1.0]))
        assert np.isfinite(fv.values).all()

    def test_all_rows_empty_but_shaped(self):
        coo = COOMatrix.empty((100, 100))
        fv = extract_features(coo)
        d = fv.as_dict()
        assert d["empty_row_frac"] == 1.0  # every row is empty
        assert d["part_imbalance"] == 1.0


class TestDiscrimination:
    """Structurally different families land in different regions."""

    def test_dense_block_vs_scatter_fill(self):
        blocky = extract_features(generate("Dense", scale=0.03, seed=0))
        scatter = extract_features(generate("Epidem", scale=0.03, seed=0))
        d_b, d_s = blocky.as_dict(), scatter.as_dict()
        # dense substructure fills 2x2 tiles far better than scatter
        assert d_b["fill_2x2"] < d_s["fill_2x2"]

    def test_symmetry_detects_symmetric_structure(self):
        n = 60
        i = np.arange(n)
        coo = COOMatrix((n, n), np.r_[i, i[:-1], i[1:]],
                        np.r_[i, i[1:], i[:-1]],
                        np.ones(3 * n - 2))
        assert extract_features(coo).as_dict()["symmetry"] == 1.0
        rect = random_coo(40, 80, 0.05, seed=3)
        assert extract_features(rect).as_dict()["symmetry"] == 0.0

    def test_diag_frac_separates_banded_from_scatter(self):
        n = 256
        diag = COOMatrix((n, n), np.arange(n), np.arange(n), np.ones(n))
        d = extract_features(diag).as_dict()
        s = extract_features(random_coo(n, n, 0.02, seed=4)).as_dict()
        assert d["diag_frac"] == 1.0
        assert s["diag_frac"] < 0.5
