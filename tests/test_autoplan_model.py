"""k-NN plan model: fit/predict, confidence, artifact round-trip."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autoplan.corpus import CorpusSample
from repro.autoplan.features import FEATURE_VERSION
from repro.autoplan.model import MODEL_VERSION, PlanModel
from repro.autoplan.train import holdout_report, stratified_split


def make_samples(n_per_class: int = 10, seed: int = 0):
    """Two well-separated clusters with distinct labels."""
    rng = np.random.default_rng(seed)
    samples = []
    for label, center in [("csr", (0.0, 0.0, 0.0)),
                          ("bcsr-2x2", (10.0, 10.0, 10.0))]:
        for i in range(n_per_class):
            feats = tuple(
                float(c + rng.normal(scale=0.5)) for c in center
            )
            samples.append(CorpusSample(
                features=feats, label=label, fmt=f"{label}-x-16bit",
                backend="numpy", machine="AMD X2",
                fingerprint=f"{label}{i}", n_threads=1, shards=0,
                weight=1.2, tuning_seconds=0.01, source="sweep",
            ))
    return samples


class TestFitPredict:
    def test_separable_classes_predicted(self):
        model = PlanModel().fit(make_samples(), k=3)
        label, conf = model.predict([0.1, -0.2, 0.3])
        assert label == "csr"
        assert conf > 0.9
        label, conf = model.predict([9.8, 10.1, 10.2])
        assert label == "bcsr-2x2"
        assert conf > 0.9

    def test_out_of_distribution_confidence_collapses(self):
        model = PlanModel().fit(make_samples(), k=3)
        _, conf_in = model.predict([0.0, 0.0, 0.0])
        _, conf_ood = model.predict([1e4, -1e4, 1e4])
        assert conf_ood < 0.1 < conf_in

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            PlanModel().fit([])

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ValueError):
            PlanModel().predict([1.0, 2.0, 3.0])

    def test_k_clamped_to_corpus(self):
        model = PlanModel().fit(make_samples(n_per_class=1), k=50)
        assert model.k == 2

    def test_constant_feature_does_not_nan(self):
        samples = make_samples()
        frozen = [
            CorpusSample(**{**s.__dict__,
                            "features": (s.features[0], 5.0, 5.0)})
            for s in samples
        ]
        model = PlanModel().fit(frozen, k=3)
        label, conf = model.predict([0.0, 5.0, 5.0])
        assert label == "csr"
        assert np.isfinite(conf)


class TestArtifact:
    def test_save_load_round_trip(self, tmp_path):
        model = PlanModel().fit(make_samples(), k=3)
        path = model.save(tmp_path / "m.json")
        back = PlanModel.load(path)
        assert back is not None
        q = [0.3, 0.1, -0.4]
        assert back.predict(q) == model.predict(q)
        assert back.classes == model.classes
        assert back.d_ref == model.d_ref

    def test_missing_file_loads_none(self, tmp_path):
        assert PlanModel.load(tmp_path / "absent.json") is None

    def test_corrupt_artifact_loads_none(self, tmp_path):
        p = tmp_path / "m.json"
        p.write_text("{broken")
        assert PlanModel.load(p) is None
        p.write_text('"a string"')
        assert PlanModel.load(p) is None

    @pytest.mark.parametrize("field,value", [
        ("model_version", MODEL_VERSION + 1),
        ("feature_version", FEATURE_VERSION + 1),
    ])
    def test_version_mismatch_loads_none(self, tmp_path, field, value):
        model = PlanModel().fit(make_samples(), k=3)
        path = model.save(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        doc[field] = value
        path.write_text(json.dumps(doc))
        assert PlanModel.load(path) is None


class TestTraining:
    def test_stratified_split_keeps_every_class_in_train(self):
        samples = make_samples(n_per_class=4)
        train, test = stratified_split(samples, holdout_frac=0.5)
        assert {s.label for s in train} == {"csr", "bcsr-2x2"}
        assert len(train) + len(test) == len(samples)

    def test_holdout_report_on_separable_data(self):
        report = holdout_report(make_samples(n_per_class=12),
                                holdout_frac=0.25, seed=1, k=3)
        assert report["n_train"] + report["n_test"] == 24
        assert report["top1_label_accuracy"] == 1.0
        assert report["format_accuracy"] == 1.0
        assert set(report["per_label"]) == {"csr", "bcsr-2x2"}
        assert report["model_version"] == MODEL_VERSION

    def test_holdout_report_empty_corpus(self):
        report = holdout_report([])
        assert report["n_samples"] == 0
        assert report["top1_label_accuracy"] is None
