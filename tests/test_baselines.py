"""OSKI and OSKI-PETSc baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import OskiTuner, petsc_spmv_model
from repro.baselines.petsc import best_petsc
from repro.core import OptimizationLevel, SpmvEngine
from repro.formats.bcsr import POWER_OF_TWO_BLOCKS
from repro.machines import get_machine
from repro.matrices import generate

SCALE = 0.04


class TestOskiTuner:
    def test_profile_covers_all_blockings(self):
        tuner = OskiTuner(get_machine("AMD X2"))
        prof = tuner.machine_profile()
        assert set(prof) == set(POWER_OF_TWO_BLOCKS)
        assert all(v > 0 for v in prof.values())

    def test_profile_memoized(self):
        tuner = OskiTuner(get_machine("AMD X2"))
        assert tuner.machine_profile() is tuner.machine_profile()

    def test_blocked_matrix_gets_blocked(self):
        coo = generate("FEM-Cant", scale=SCALE, seed=0)  # 2x2 blocks
        tuner = OskiTuner(get_machine("AMD X2"))
        r, c = tuner.choose_blocking(coo)
        assert (r, c) != (1, 1)

    def test_scattered_matrix_stays_1x1(self):
        coo = generate("Econom", scale=SCALE, seed=0)
        tuner = OskiTuner(get_machine("AMD X2"))
        assert tuner.choose_blocking(coo) == (1, 1)

    def test_fill_estimate(self):
        coo = generate("Epidem", scale=SCALE, seed=0)
        tuner = OskiTuner(get_machine("AMD X2"))
        assert tuner.estimate_fill(coo, 1, 1) == 1.0
        assert tuner.estimate_fill(coo, 4, 4) > 1.5

    def test_tuned_matrix_correct(self, rng):
        coo = generate("FEM-Har", scale=SCALE, seed=0)
        tuner = OskiTuner(get_machine("Clovertown"))
        mat = tuner.tuned_matrix(coo)
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_allclose(mat.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_oski_uses_32bit_only(self):
        coo = generate("FEM-Har", scale=SCALE, seed=0)
        tuner = OskiTuner(get_machine("AMD X2"))
        plan = tuner.plan(coo)
        for _, choice in plan.choices:
            assert choice.index_bytes == 4

    def test_our_engine_beats_oski_serial(self):
        """§6.2: "about a 1.2x speedup over the highly tuned OSKI
        library (where prefetching undoubtedly helped)"."""
        coo = generate("FEM-Cant", scale=SCALE, seed=0)
        m = get_machine("AMD X2")
        oski = OskiTuner(m).simulate(coo)
        ours = SpmvEngine(m).plan(coo, level=OptimizationLevel.PF_RB_CB)
        ours_res = SpmvEngine(m).simulate(ours)
        assert ours_res.gflops > 1.1 * oski.gflops


class TestPetscModel:
    def test_runs_and_reports(self):
        coo = generate("QCD", scale=SCALE, seed=0)
        res = petsc_spmv_model(coo, get_machine("AMD X2"), 4)
        assert res.gflops > 0
        assert 0 <= res.comm_fraction < 1
        assert res.n_procs == 4
        assert "OSKI-PETSc" in res.summary()

    def test_equal_rows_imbalance_reported(self):
        # Power-law row distribution: equal-rows must be imbalanced.
        coo = generate("LP", scale=SCALE, seed=0)
        res = petsc_spmv_model(coo, get_machine("AMD X2"), 4)
        assert res.imbalance > 1.2

    def test_lp_communicates_heavily(self):
        """§6.2: communication reaches 56% of runtime on LP; banded
        matrices barely communicate. Needs realistic scale — at toy
        sizes the per-message latency floor swamps both."""
        lp = generate("LP", scale=0.3, seed=0)
        banded = generate("Epidem", scale=0.3, seed=0)
        m = get_machine("AMD X2")
        lp_res = petsc_spmv_model(lp, m, 4)
        banded_res = petsc_spmv_model(banded, m, 4)
        assert lp_res.comm_fraction > 3 * banded_res.comm_fraction
        assert lp_res.comm_fraction > 0.2

    def test_best_petsc_sweeps(self):
        coo = generate("Circuit", scale=SCALE, seed=0)
        m = get_machine("Clovertown")
        best = best_petsc(coo, m)
        one = petsc_spmv_model(coo, m, 1)
        assert best.gflops >= one.gflops

    def test_pthreads_beats_mpi(self):
        """§7: "the Pthreads strategy resulted in runtimes more than
        twice as fast as the message passing implementation"."""
        # Realistic scale: the pthread advantages (NUMA placement,
        # nnz balance, zero copies) only show once memory-bound.
        coo = generate("Tunnel", scale=0.25, seed=0)
        m = get_machine("AMD X2")
        pthreads = SpmvEngine(m).simulate(
            SpmvEngine(m).plan(coo, n_threads=m.n_cores)
        )
        mpi = best_petsc(coo, m)
        assert pthreads.gflops > 1.5 * mpi.gflops

    def test_single_proc(self):
        coo = generate("Econom", scale=SCALE, seed=0)
        res = petsc_spmv_model(coo, get_machine("Niagara"), 1)
        assert res.comm_bytes == 0
        assert res.comm_fraction < 0.05
