"""Benchmark-harness helper tests (kept in the main suite so the
figure plumbing is exercised without running full-scale sweeps)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import _harness  # noqa: E402


class TestLabels:
    def test_parallel_points_cover_all_machines(self):
        from repro.machines import machine_names

        assert set(_harness.PARALLEL_POINTS) == set(machine_names())

    def test_full_system_flag_once_per_machine(self):
        for name, points in _harness.PARALLEL_POINTS.items():
            assert sum(1 for *_, full in points if full) == 1, name

    def test_socket_and_system_selectors(self):
        bars = {
            "1 Core[PF,RB,CB]": 1.0, "2 Core[*]": 1.5,
            "Dual Socket x 2 Core[*]": 2.5,
        }
        assert _harness.best_serial(bars) == 1.0
        assert _harness.best_socket("AMD X2", bars) == 1.5
        assert _harness.best_system("AMD X2", bars) == 2.5

    def test_niagara_socket_is_one_thread(self):
        bars = {"8 Cores x 1 Thread[*]": 0.28,
                "8 Cores x 4 Threads[*]": 0.79}
        assert _harness.best_socket("Niagara", bars) == 0.28
        assert _harness.best_system("Niagara", bars) == 0.79


class TestSweep:
    def test_figure1_small_scale_single_matrix(self):
        data = _harness.figure1_data(
            "Cell (PS3)", 0.02, matrices=["QCD"]
        )
        bars = data["QCD"]
        assert "1 SPE(PS3)" in bars and "6 SPEs(PS3)" in bars
        assert bars["6 SPEs(PS3)"] > bars["1 SPE(PS3)"]

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        payload = {"M": {"bar": 1.25}}
        _harness._save_disk_cache("AMD X2", 0.5, payload)
        assert _harness._load_disk_cache("AMD X2", 0.5) == payload
        assert _harness._load_disk_cache("AMD X2", 0.25) is None

    def test_disk_cache_tolerates_corruption(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        path = Path(_harness._cache_path("AMD X2", 0.5))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert _harness._load_disk_cache("AMD X2", 0.5) is None

    def test_disk_cache_rejects_version_mismatch(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        path = Path(_harness._cache_path("AMD X2", 0.5))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "model_version": "0.0.0-stale", "data": {"M": {"bar": 1.0}}
        }))
        assert _harness._load_disk_cache("AMD X2", 0.5) is None

    def test_disk_cache_rejects_legacy_unstamped_payload(
            self, tmp_path, monkeypatch):
        # Pre-envelope caches were the bare {matrix: {bar: gflops}}
        # dict; they carry numbers from an unknown simulator version
        # and must be treated as stale, not served.
        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        path = Path(_harness._cache_path("AMD X2", 0.5))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"M": {"bar": 1.25}}))
        assert _harness._load_disk_cache("AMD X2", 0.5) is None

    def test_disk_cache_envelope_is_stamped(self, tmp_path,
                                            monkeypatch):
        import repro

        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        _harness._save_disk_cache("AMD X2", 0.5, {"M": {"bar": 1.0}})
        raw = json.loads(
            Path(_harness._cache_path("AMD X2", 0.5)).read_text()
        )
        assert raw["model_version"] == repro.__version__
        assert raw["machine"] == "AMD X2" and raw["scale"] == 0.5

    def test_disk_cache_counters(self, tmp_path, monkeypatch):
        from repro.observe.metrics import get_registry

        reg = get_registry()
        reg.reset()
        monkeypatch.setattr(_harness, "_CACHE_DIR", str(tmp_path))
        _harness._load_disk_cache("AMD X2", 0.5)          # miss
        _harness._save_disk_cache("AMD X2", 0.5, {"M": {}})
        _harness._load_disk_cache("AMD X2", 0.5)          # hit
        assert reg.counter("bench.cache_miss") == 1
        assert reg.counter("bench.cache_hit") == 1
        reg.reset()

    def test_plan_point_socket_vs_system(self):
        from repro.core import SpmvEngine
        from repro.machines import PlacementPolicy, get_machine
        from repro.matrices import generate

        coo = generate("Epidem", scale=0.03, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        socket = _harness.plan_point(eng, coo, 2, full_system=False)
        system = _harness.plan_point(eng, coo, 4, full_system=True)
        assert socket.config.policy is PlacementPolicy.SINGLE_NODE
        assert system.config.policy is PlacementPolicy.NUMA_AWARE
