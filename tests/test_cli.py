"""CLI smoke tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.matrices import save_matrix, save_matrix_market
from tests.conftest import random_coo


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCLI:
    def test_machines(self, capsys):
        code, out = run(capsys, "machines")
        assert code == 0
        for name in ["AMD X2", "Clovertown", "Niagara", "Cell Blade"]:
            assert name in out

    def test_suite(self, capsys):
        code, out = run(capsys, "suite", "--scale", "0.01")
        assert code == 0
        assert "Webbase" in out and "LP" in out

    def test_tune_suite_matrix(self, capsys):
        code, out = run(capsys, "tune", "Econom", "--scale", "0.02",
                        "--machine", "Clovertown", "--threads", "2")
        assert code == 0
        assert "simulated" in out and "Gflop/s" in out

    def test_tune_mtx_file(self, capsys, tmp_path):
        coo = random_coo(60, 60, 0.1, seed=1)
        path = tmp_path / "m.mtx"
        save_matrix_market(path, coo)
        code, out = run(capsys, "tune", str(path), "--threads", "1")
        assert code == 0
        assert "60x60" in out

    def test_sweep(self, capsys):
        code, out = run(capsys, "sweep", "QCD", "--scale", "0.02",
                        "--machine", "AMD X2")
        assert code == 0
        assert "naive" in out and "4 threads" in out

    def test_compare(self, capsys):
        code, out = run(capsys, "compare", "Epidem", "--scale", "0.02")
        assert code == 0
        assert "Cell Blade" in out

    def test_info(self, capsys, tmp_path):
        coo = random_coo(30, 40, 0.1, seed=2)
        path = tmp_path / "m.npz"
        save_matrix(path, coo)
        code, out = run(capsys, "info", str(path))
        assert code == 0
        assert "30 x 40" in out

    def test_validate(self, capsys):
        code, out = run(capsys, "validate", "--scale", "0.01")
        assert code == 0
        assert "model/exact" in out

    def test_validate_rejects_cell(self, capsys):
        code = main(["validate", "--machine", "Cell (PS3)",
                     "--scale", "0.01"])
        assert code == 1

    def test_figures_from_cache(self, capsys, tmp_path):
        import json

        path = tmp_path / "fig1.json"
        path.write_text(json.dumps(
            {"MatX": {"naive": 0.5, "full": 2.0}}
        ))
        code, out = run(capsys, "figures", str(path),
                        "--machine", "AMD X2")
        assert code == 0
        assert "MatX" in out and "median" in out

    def test_figures_missing_cache(self, tmp_path):
        code = main(["figures", str(tmp_path / "nope.json")])
        assert code == 1

    def test_stats(self, capsys):
        code, out = run(capsys, "stats", "dense2", "--scale", "0.05",
                        "--machine", "AMD X2")
        assert code == 0
        assert "bottleneck attribution" in out
        assert "mem%" in out and "comp%" in out and "lat%" in out
        assert "plan.blocks_created" in out

    def test_sweep_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.observe.trace import get_tracer, read_trace

        path = tmp_path / "t.jsonl"
        code, _ = run(capsys, "sweep", "dense2", "--scale", "0.05",
                      "--machine", "AMD X2", "--trace", str(path))
        assert code == 0
        events = read_trace(path)
        assert events, "trace file is empty"
        names = {e.name for e in events}
        assert "engine.plan" in names and "sim.memory" in names
        # The CLI disables the global tracer when the command exits.
        assert get_tracer() is None

    def test_trace_flag_before_subcommand(self, capsys, tmp_path):
        from repro.observe.trace import read_trace

        path = tmp_path / "pre.jsonl"
        code, _ = run(capsys, "--trace", str(path), "tune", "Dense",
                      "--scale", "0.02", "--threads", "1")
        assert code == 0
        assert {e.name for e in read_trace(path)} >= {"engine.plan"}

    def test_trace_chrome_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "chrome.json"
        code, _ = run(capsys, "stats", "Dense", "--scale", "0.02",
                      "--trace-chrome", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeCLI:
    def test_tune_gzipped_mtx(self, capsys, tmp_path):
        coo = random_coo(60, 60, 0.1, seed=11)
        path = tmp_path / "m.mtx.gz"
        save_matrix_market(path, coo)
        code, out = run(capsys, "tune", str(path), "--threads", "1")
        assert code == 0
        assert "simulated" in out

    def test_plan_cache_inspect_empty(self, capsys, tmp_path):
        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(tmp_path / "none"))
        assert code == 0
        assert "no cached plans" in out

    def test_plan_cache_inspect_and_clear(self, capsys, tmp_path):
        from repro.machines import get_machine
        from repro.serve import MatrixRegistry, PlanCache

        cache_dir = tmp_path / "plans"
        reg = MatrixRegistry(get_machine("AMD X2"), n_threads=1,
                             plan_cache=PlanCache(cache_dir))
        reg.register(random_coo(80, 80, 0.05, seed=12))

        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(cache_dir))
        assert code == 0
        assert "AMD X2" in out and "yes" in out

        code, out = run(capsys, "plan-cache", "clear",
                        "--dir", str(cache_dir))
        assert code == 0
        assert "removed 1" in out

        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(cache_dir))
        assert "no cached plans" in out

    def test_serve_in_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "serve" in out and "plan-cache" in out
        assert "dist-bench" in out


class TestDistBenchCLI:
    def test_dist_bench_row(self, capsys):
        code, out = run(capsys, "dist-bench", "Circuit",
                        "--shards", "1,2", "--scale", "0.03",
                        "--iters", "2")
        assert code == 0
        assert "Circuit" in out
        # One row per shard count; shards=1 runs the serial path.
        assert "serial" in out
        assert "row" in out
        assert "GFLOP/s" in out

    def test_dist_bench_col_path(self, capsys):
        code, out = run(capsys, "dist-bench", "Circuit",
                        "--shards", "2", "--scale", "0.03",
                        "--iters", "2", "--path", "col")
        assert code == 0
        assert "col" in out


class TestAutoplanCLI:
    def _seed_corpus(self, path, n_per_class=6):
        import numpy as np

        from repro.autoplan.corpus import CorpusSample, PlanCorpus

        rng = np.random.default_rng(0)
        corpus = PlanCorpus(path)
        for label, center in [("csr", 0.0), ("bcsr-2x2", 10.0)]:
            for i in range(n_per_class):
                feats = tuple(
                    float(center + rng.normal(scale=0.3))
                    for _ in range(3)
                )
                corpus.append(CorpusSample(
                    features=feats, label=label,
                    fmt=f"{label}-x-16bit", backend="numpy",
                    machine="AMD X2", fingerprint=f"{label}{i}",
                    n_threads=1, shards=0, weight=1.2,
                    tuning_seconds=0.01, source="sweep",
                ))
        return corpus

    def test_train_empty_corpus_fails(self, capsys, tmp_path):
        code = main(["autoplan", "train", "--dir", str(tmp_path)])
        assert code == 1

    def test_train_missing_paths_usage_error(self, capsys):
        code = main(["autoplan", "train"])
        assert code == 2

    def test_train_then_report(self, capsys, tmp_path):
        import json

        self._seed_corpus(tmp_path / "autoplan_corpus.jsonl")
        code, out = run(capsys, "autoplan", "train",
                        "--dir", str(tmp_path))
        assert code == 0
        assert "trained on 12 sample(s)" in out
        assert (tmp_path / "autoplan_model.json").exists()

        code, out = run(capsys, "autoplan", "report",
                        "--dir", str(tmp_path), "--json")
        assert code == 0
        report = json.loads(out)
        assert report["n_samples"] == 12
        assert report["top1_label_accuracy"] is not None

    def test_predict_suite_matrix(self, capsys, tmp_path):
        # model trained on real features so the suite matrix is
        # in-distribution enough to produce a prediction line
        from repro.autoplan import AutoPlanner, train_model
        from repro.autoplan.corpus import CorpusSample
        from repro.autoplan.features import extract_features
        from repro.matrices import generate

        planner = AutoPlanner(tmp_path)
        for seed in range(4):
            coo = generate("FEM-Har", scale=0.02, seed=seed)
            fv = extract_features(coo)
            planner.corpus.append(CorpusSample(
                features=tuple(fv.to_list()), label="bcsr-2x2",
                fmt="bcsr-2x2-16bit", backend="numpy",
                machine="AMD X2", fingerprint=f"fp{seed}",
                n_threads=1, shards=0, weight=1.1,
                tuning_seconds=0.05, source="sweep",
            ))
        train_model(planner.corpus.load(), k=3).save(planner.model_path)

        code, out = run(capsys, "autoplan", "predict", "FEM-Har",
                        "--dir", str(tmp_path), "--scale", "0.02")
        assert code == 0
        assert "prediction : bcsr-2x2" in out
        assert "plan       :" in out

    def test_predict_without_model_fails(self, capsys, tmp_path):
        code = main(["autoplan", "predict", "FEM-Har",
                     "--dir", str(tmp_path), "--scale", "0.02"])
        assert code == 1

    def test_plan_cache_export(self, capsys, tmp_path):
        from repro.autoplan.corpus import PlanCorpus
        from repro.autoplan.features import FEATURE_VERSION
        from repro.core import SpmvEngine
        from repro.machines import get_machine
        from repro.serve import PlanCache

        cache_dir = tmp_path / "plans"
        cache = PlanCache(cache_dir)
        coo = random_coo(80, 80, 0.05, seed=21)
        engine = SpmvEngine(get_machine("AMD X2"))
        cache.store(coo.content_fingerprint(),
                    engine.plan(coo, n_threads=1),
                    autoplan={
                        "source": "sweep", "label": "csr",
                        "fmt": "csr-1x1-16bit", "confidence": 0.0,
                        "weight": 1.3, "tuning_seconds": 0.1,
                        "features": [1.0, 2.0],
                        "feature_version": FEATURE_VERSION,
                        "n_threads": 1, "shards": 0,
                    })
        out_path = tmp_path / "corpus.jsonl"
        code, out = run(capsys, "plan-cache", "export",
                        "--dir", str(cache_dir),
                        "--out", str(out_path))
        assert code == 0
        assert "exported 1 training sample(s)" in out
        assert len(PlanCorpus(out_path).load()) == 1
