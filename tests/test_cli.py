"""CLI smoke tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.matrices import save_matrix, save_matrix_market
from tests.conftest import random_coo


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCLI:
    def test_machines(self, capsys):
        code, out = run(capsys, "machines")
        assert code == 0
        for name in ["AMD X2", "Clovertown", "Niagara", "Cell Blade"]:
            assert name in out

    def test_suite(self, capsys):
        code, out = run(capsys, "suite", "--scale", "0.01")
        assert code == 0
        assert "Webbase" in out and "LP" in out

    def test_tune_suite_matrix(self, capsys):
        code, out = run(capsys, "tune", "Econom", "--scale", "0.02",
                        "--machine", "Clovertown", "--threads", "2")
        assert code == 0
        assert "simulated" in out and "Gflop/s" in out

    def test_tune_mtx_file(self, capsys, tmp_path):
        coo = random_coo(60, 60, 0.1, seed=1)
        path = tmp_path / "m.mtx"
        save_matrix_market(path, coo)
        code, out = run(capsys, "tune", str(path), "--threads", "1")
        assert code == 0
        assert "60x60" in out

    def test_sweep(self, capsys):
        code, out = run(capsys, "sweep", "QCD", "--scale", "0.02",
                        "--machine", "AMD X2")
        assert code == 0
        assert "naive" in out and "4 threads" in out

    def test_compare(self, capsys):
        code, out = run(capsys, "compare", "Epidem", "--scale", "0.02")
        assert code == 0
        assert "Cell Blade" in out

    def test_info(self, capsys, tmp_path):
        coo = random_coo(30, 40, 0.1, seed=2)
        path = tmp_path / "m.npz"
        save_matrix(path, coo)
        code, out = run(capsys, "info", str(path))
        assert code == 0
        assert "30 x 40" in out

    def test_validate(self, capsys):
        code, out = run(capsys, "validate", "--scale", "0.01")
        assert code == 0
        assert "model/exact" in out

    def test_validate_rejects_cell(self, capsys):
        code = main(["validate", "--machine", "Cell (PS3)",
                     "--scale", "0.01"])
        assert code == 1

    def test_figures_from_cache(self, capsys, tmp_path):
        import json

        path = tmp_path / "fig1.json"
        path.write_text(json.dumps(
            {"MatX": {"naive": 0.5, "full": 2.0}}
        ))
        code, out = run(capsys, "figures", str(path),
                        "--machine", "AMD X2")
        assert code == 0
        assert "MatX" in out and "median" in out

    def test_figures_missing_cache(self, tmp_path):
        code = main(["figures", str(tmp_path / "nope.json")])
        assert code == 1

    def test_stats(self, capsys):
        code, out = run(capsys, "stats", "dense2", "--scale", "0.05",
                        "--machine", "AMD X2")
        assert code == 0
        assert "bottleneck attribution" in out
        assert "mem%" in out and "comp%" in out and "lat%" in out
        assert "plan.blocks_created" in out

    def test_sweep_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.observe.trace import get_tracer, read_trace

        path = tmp_path / "t.jsonl"
        code, _ = run(capsys, "sweep", "dense2", "--scale", "0.05",
                      "--machine", "AMD X2", "--trace", str(path))
        assert code == 0
        events = read_trace(path)
        assert events, "trace file is empty"
        names = {e.name for e in events}
        assert "engine.plan" in names and "sim.memory" in names
        # The CLI disables the global tracer when the command exits.
        assert get_tracer() is None

    def test_trace_flag_before_subcommand(self, capsys, tmp_path):
        from repro.observe.trace import read_trace

        path = tmp_path / "pre.jsonl"
        code, _ = run(capsys, "--trace", str(path), "tune", "Dense",
                      "--scale", "0.02", "--threads", "1")
        assert code == 0
        assert {e.name for e in read_trace(path)} >= {"engine.plan"}

    def test_trace_chrome_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "chrome.json"
        code, _ = run(capsys, "stats", "Dense", "--scale", "0.02",
                      "--trace-chrome", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeCLI:
    def test_tune_gzipped_mtx(self, capsys, tmp_path):
        coo = random_coo(60, 60, 0.1, seed=11)
        path = tmp_path / "m.mtx.gz"
        save_matrix_market(path, coo)
        code, out = run(capsys, "tune", str(path), "--threads", "1")
        assert code == 0
        assert "simulated" in out

    def test_plan_cache_inspect_empty(self, capsys, tmp_path):
        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(tmp_path / "none"))
        assert code == 0
        assert "no cached plans" in out

    def test_plan_cache_inspect_and_clear(self, capsys, tmp_path):
        from repro.machines import get_machine
        from repro.serve import MatrixRegistry, PlanCache

        cache_dir = tmp_path / "plans"
        reg = MatrixRegistry(get_machine("AMD X2"), n_threads=1,
                             plan_cache=PlanCache(cache_dir))
        reg.register(random_coo(80, 80, 0.05, seed=12))

        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(cache_dir))
        assert code == 0
        assert "AMD X2" in out and "yes" in out

        code, out = run(capsys, "plan-cache", "clear",
                        "--dir", str(cache_dir))
        assert code == 0
        assert "removed 1" in out

        code, out = run(capsys, "plan-cache", "inspect",
                        "--dir", str(cache_dir))
        assert "no cached plans" in out

    def test_serve_in_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "serve" in out and "plan-cache" in out
        assert "dist-bench" in out


class TestDistBenchCLI:
    def test_dist_bench_row(self, capsys):
        code, out = run(capsys, "dist-bench", "Circuit",
                        "--shards", "1,2", "--scale", "0.03",
                        "--iters", "2")
        assert code == 0
        assert "Circuit" in out
        # One row per shard count; shards=1 runs the serial path.
        assert "serial" in out
        assert "row" in out
        assert "GFLOP/s" in out

    def test_dist_bench_col_path(self, capsys):
        code, out = run(capsys, "dist-bench", "Circuit",
                        "--shards", "2", "--scale", "0.03",
                        "--iters", "2", "--path", "col")
        assert code == 0
        assert "col" in out
