"""Client lifecycle contracts: close() is idempotent everywhere.

The serving tier now has two client classes (``ServeClient``,
``ClusterClient``); both follow the same context-manager protocol:
``close()`` twice is a no-op, and any operation after ``close()``
raises a clear error instead of hanging on a dead resource.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterClient, ClusterNode
from repro.errors import ClusterError, ReproError
from repro.serve.client import ServeClient

from tests.conftest import random_coo


@pytest.fixture
def node():
    n = ClusterNode(machine="AMD X2", n_threads=1, max_batch=2).start()
    yield n
    n.close()


class TestServeClientClose:
    def test_close_is_idempotent(self):
        """Regression: double ``close()`` must be a no-op, not an
        error or a hang on already-joined workers."""
        client = ServeClient("AMD X2", n_threads=1)
        client.close()
        client.close()

    def test_context_manager_then_close(self):
        with ServeClient("AMD X2", n_threads=1) as client:
            pass
        client.close()  # after __exit__ already closed it


class TestClusterClientLifecycle:
    def test_context_manager_protocol(self, node, rng):
        coo = random_coo(24, 24, 0.1, seed=11)
        fp = node.client.register(coo).fingerprint
        x = rng.standard_normal(24)
        with ClusterClient(node.address) as cc:
            y = cc.spmv(fp, x)
        assert np.array_equal(y, node.client.spmv(fp, x))

    def test_double_close_is_noop(self, node):
        cc = ClusterClient(node.address)
        cc.close()
        cc.close()

    def test_use_after_close_raises(self, node):
        cc = ClusterClient(node.address)
        cc.close()
        with pytest.raises(ClusterError, match="closed"):
            cc.spmv("whatever", np.ones(4))
        with pytest.raises(ClusterError, match="closed"):
            cc.ping()
        with pytest.raises(ClusterError, match="closed"):
            cc.healthz()

    def test_close_inside_with_block_is_safe(self, node):
        with ClusterClient(node.address) as cc:
            cc.close()   # __exit__ will close again: still a no-op

    def test_bad_address_rejected_early(self):
        with pytest.raises(ClusterError, match="address"):
            ClusterClient("not-an-address")

    def test_operator_follows_solver_protocol(self, node, rng):
        coo = random_coo(16, 16, 0.2, seed=12)
        with ClusterClient(node.address) as cc:
            fp = cc.register(coo)["fingerprint"]
            op = cc.operator(fp)
            assert op.shape == (16, 16)
            assert op.nrows == op.ncols == 16
            x = rng.standard_normal(16)
            y = op(x)
            out = np.zeros(16)      # spmv(x, y=) accumulates: y += A·x
            y2 = op.spmv(x, y=out)
            assert y2 is out
            assert np.array_equal(y, out)

    def test_transport_failure_is_cluster_error(self, node, rng):
        coo = random_coo(16, 16, 0.2, seed=13)
        fp = node.client.register(coo).fingerprint
        cc = ClusterClient(node.address)
        try:
            cc.spmv(fp, np.ones(16))
            node.close()
            with pytest.raises(ClusterError):
                cc.spmv(fp, np.ones(16))
        finally:
            cc.close()

    def test_error_is_repro_error(self):
        assert issubclass(ClusterError, ReproError)
