"""Consistent-hash placement: determinism, balance, minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster.placement import HashRing, Placement, ring_hash
from repro.errors import ClusterError

NODES = [f"10.0.0.{i}:7070" for i in range(1, 6)]
KEYS = [f"fp-{i:04d}" for i in range(500)]


def test_ring_hash_is_deterministic():
    assert ring_hash("abc") == ring_hash("abc")
    assert ring_hash("abc") != ring_hash("abd")


def test_owners_deterministic_across_instances():
    a = HashRing(NODES)
    b = HashRing(list(reversed(NODES)))  # insertion order irrelevant
    for key in KEYS[:50]:
        assert a.owners(key, 3) == b.owners(key, 3)


def test_owners_are_distinct_nodes():
    ring = HashRing(NODES)
    for key in KEYS[:50]:
        owners = ring.owners(key, 3)
        assert len(owners) == len(set(owners)) == 3


def test_owners_capped_at_ring_size():
    ring = HashRing(NODES[:2])
    assert len(ring.owners("k", 10)) == 2


def test_empty_ring_raises_503():
    ring = HashRing([])
    with pytest.raises(ClusterError) as err:
        ring.owners("k", 1)
    assert err.value.status == 503


def test_balance_is_reasonable():
    ring = HashRing(NODES, vnodes=64)
    counts = {n: 0 for n in NODES}
    for key in KEYS:
        counts[ring.primary(key)] += 1
    expected = len(KEYS) / len(NODES)
    for node, count in counts.items():
        # 64 vnodes keeps the spread well within 2x of fair share
        assert expected / 2 < count < expected * 2, (node, counts)


def test_minimal_movement_on_node_removal():
    ring = HashRing(NODES)
    before = {key: ring.primary(key) for key in KEYS}
    ring.remove(NODES[2])
    moved = sum(
        1 for key in KEYS
        if ring.primary(key) != before[key])
    # only keys owned by the removed node may move
    owned = sum(1 for v in before.values() if v == NODES[2])
    assert moved == owned
    # and survivors keep their assignment
    for key in KEYS:
        if before[key] != NODES[2]:
            assert ring.primary(key) == before[key]


def test_add_is_inverse_of_remove():
    ring = HashRing(NODES)
    before = {key: ring.owners(key, 2) for key in KEYS[:100]}
    ring.remove(NODES[0])
    ring.add(NODES[0])
    for key in KEYS[:100]:
        assert ring.owners(key, 2) == before[key]


def test_placement_hot_widens_owner_set():
    p = Placement(NODES, replication=2, fanout_extra=1)
    for key in KEYS[:50]:
        cold = p.owners(key)
        hot = p.owners(key, hot=True)
        assert len(cold) == 2
        assert len(hot) == 3
        # widening is strictly additive: cold owners stay first, so a
        # matrix registered cold is always reachable when it goes hot
        assert hot[:2] == cold


def test_placement_describe():
    p = Placement(NODES[:3], replication=2)
    desc = p.describe()
    assert desc["replication"] == 2
    assert sorted(desc["nodes"]) == sorted(NODES[:3])
