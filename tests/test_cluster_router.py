"""Router end-to-end: 2 in-process nodes, failover, merged traces."""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterClient, ClusterNode, ClusterRouter
from repro.dist.fault import RetryPolicy
from repro.errors import ClusterError
from repro.observe import context as _context
from repro.serve.client import ServeClient

from tests.conftest import random_coo


@pytest.fixture
def cluster():
    """Two nodes + a router; health scans kept slow so tests control
    exactly when a dead node is noticed."""
    nodes = [ClusterNode(machine="AMD X2", n_threads=1,
                         max_batch=4).start()
             for _ in range(2)]
    router = ClusterRouter(
        [n.address for n in nodes], replication=2,
        retry=RetryPolicy(max_retries=3, backoff_s=0.01),
        health_interval_s=60.0).start()
    try:
        yield nodes, router
    finally:
        router.close()
        for n in nodes:
            n.close()


def register_through_router(router, coo):
    body = json.dumps({
        "shape": list(coo.shape),
        "row": coo.row.tolist(),
        "col": coo.col.tolist(),
        "val": coo.val.tolist(),
    }).encode()
    req = urllib.request.Request(
        f"http://{router.address}/v1/matrices", data=body,
        method="POST", headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def test_spmv_through_router_matches_local(cluster, rng):
    nodes, router = cluster
    coo = random_coo(60, 60, 0.08, seed=3)
    x = rng.standard_normal(60)

    with ServeClient("AMD X2", n_threads=1) as local:
        y_ref = local.spmv(local.register(coo).fingerprint, x)

    reply = register_through_router(router, coo)
    assert len(reply["owners"]) == 2       # replication=2, both nodes
    assert reply["failed_owners"] == {}

    with ClusterClient(router.address) as cc:
        y = cc.spmv(reply["fingerprint"], x)
    assert np.array_equal(y, y_ref)        # bit-identical, not approx


def test_json_spmv_through_router(cluster, rng):
    nodes, router = cluster
    coo = random_coo(40, 40, 0.1, seed=4)
    x = rng.standard_normal(40)
    reply = register_through_router(router, coo)

    body = json.dumps({"fingerprint": reply["fingerprint"],
                       "x": x.tolist()}).encode()
    req = urllib.request.Request(
        f"http://{router.address}/v1/spmv", data=body,
        method="POST", headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        y = np.asarray(json.loads(resp.read())["y"])

    with ServeClient("AMD X2", n_threads=1) as local:
        y_ref = local.spmv(local.register(coo).fingerprint, x)
    assert np.array_equal(y, y_ref)


def test_failover_on_node_death(cluster, rng):
    nodes, router = cluster
    coo = random_coo(50, 50, 0.1, seed=5)
    x = rng.standard_normal(50)
    reply = register_through_router(router, coo)
    fingerprint = reply["fingerprint"]

    # The router walks owners in ring order, so the node that must
    # die for a failover to happen is the *primary* owner — which of
    # the two nodes that is depends on how the ephemeral ports hash.
    primary_addr = router.placement.owners(fingerprint)[0]
    primary = next(n for n in nodes if n.address == primary_addr)

    with ClusterClient(router.address) as cc:
        y_before = cc.spmv(fingerprint, x)
        # Kill the primary. The health interval is 60s, so the router
        # still believes it's up — the very next request must hit the
        # dead socket, count a failover, and serve from the replica.
        from repro.observe.metrics import get_registry
        before = get_registry().counter("cluster.failovers")
        primary.close()
        y_after = cc.spmv(fingerprint, x)
        after = get_registry().counter("cluster.failovers")

    assert np.array_equal(y_before, y_after)
    assert after > before
    assert router._states[primary_addr].up is False


def test_all_replicas_down_is_503(cluster, rng):
    nodes, router = cluster
    coo = random_coo(30, 30, 0.1, seed=6)
    reply = register_through_router(router, coo)
    for n in nodes:
        n.close()
    with ClusterClient(router.address) as cc:
        with pytest.raises(ClusterError) as err:
            cc.spmv(reply["fingerprint"],
                    np.ones(30))
    assert err.value.status == 503


def test_unknown_fingerprint_is_404(cluster):
    nodes, router = cluster
    with ClusterClient(router.address) as cc:
        with pytest.raises(ClusterError) as err:
            cc.spmv("no-such-fingerprint", np.ones(8))
    assert err.value.status == 404


def test_merged_trace_spans_router_and_node(cluster, rng):
    nodes, router = cluster
    coo = random_coo(40, 40, 0.1, seed=7)
    x = rng.standard_normal(40)
    reply = register_through_router(router, coo)

    ctx = _context.new_trace(sampled=True)
    with ClusterClient(router.address) as cc:
        with _context.use(ctx):
            cc.spmv(reply["fingerprint"], x)

    with urllib.request.urlopen(
            f"http://{router.address}/v1/debug/trace/{ctx.trace_id}",
            timeout=30) as resp:
        tree = json.loads(resp.read())["spans"]

    def names(spans):
        out = []
        for s in spans:
            out.append(s["name"])
            out.extend(names(s.get("children", [])))
        return out

    all_names = names(tree)
    # one merged tree: router spans AND the node's serve span in it
    assert "cluster.request" in all_names
    assert "cluster.forward" in all_names
    assert "serve.request" in all_names
    forward = next(s for s in _walk(tree)
                   if s["name"] == "cluster.forward")
    child_names = [c["name"] for c in forward.get("children", [])]
    assert "serve.request" in child_names


def _walk(spans):
    for s in spans:
        yield s
        yield from _walk(s.get("children", []))


def test_router_healthz_and_metrics(cluster):
    nodes, router = cluster
    with urllib.request.urlopen(
            f"http://{router.address}/healthz", timeout=30) as resp:
        desc = json.loads(resp.read())
    assert desc["role"] == "router"
    assert set(desc["nodes"]) == {n.address for n in nodes}

    with urllib.request.urlopen(
            f"http://{router.address}/metrics", timeout=30) as resp:
        text = resp.read().decode()
    assert "cluster_nodes_up" in text
