"""Wire codec: roundtrips, limits, torn-frame tolerance.

Mirrors the torn-line tolerance style of the ``observe/ring.py``
tests: a stream cut mid-frame must be a loud :class:`WireError`,
never a silently reinterpreted short frame.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.cluster import wire
from repro.errors import ClusterError, WireError


def roundtrip(kind, header, payload=b""):
    asm = wire.FrameAssembler()
    frames = asm.feed(wire.encode_frame(kind, header, payload))
    assert len(frames) == 1
    assert asm.buffered == 0
    return frames[0]


class TestRoundtrip:
    def test_header_and_payload_survive(self, rng):
        x = rng.standard_normal(257)
        _, view = wire.vector_payload(x)
        kind, header, payload = roundtrip(
            wire.KIND_SPMV, {"fingerprint": "abc", "n": 257}, view)
        assert kind == wire.KIND_SPMV
        assert header == {"fingerprint": "abc", "n": 257}
        np.testing.assert_array_equal(
            wire.payload_vector(payload, 257), x)

    def test_empty_vector(self):
        arr, view = wire.vector_payload(np.zeros(0))
        kind, header, payload = roundtrip(
            wire.KIND_SPMV, {"n": 0}, view)
        assert payload == b""
        assert wire.payload_vector(payload, 0).shape == (0,)

    def test_empty_header(self):
        kind, header, payload = roundtrip(wire.KIND_PING, None)
        assert (kind, header, payload) == (wire.KIND_PING, {}, b"")

    def test_non_contiguous_input(self, rng):
        base = rng.standard_normal(64)
        strided = base[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        arr, view = wire.vector_payload(strided)
        _, _, payload = roundtrip(wire.KIND_SPMV, {"n": 32}, view)
        np.testing.assert_array_equal(
            wire.payload_vector(payload, 32), strided)

    def test_int_input_becomes_float64(self):
        arr, view = wire.vector_payload(np.arange(5))
        _, _, payload = roundtrip(wire.KIND_SPMV, {"n": 5}, view)
        decoded = wire.payload_vector(payload, 5)
        assert decoded.dtype == np.dtype("<f8")
        np.testing.assert_array_equal(decoded, np.arange(5.0))

    def test_contiguous_float64_is_zero_copy(self):
        x = np.ones(16)
        arr, view = wire.vector_payload(x)
        assert arr is x
        assert view.nbytes == x.nbytes

    def test_multi_frame_stream(self):
        stream = (wire.encode_frame(wire.KIND_PING, {})
                  + wire.encode_frame(wire.KIND_PONG, {}))
        frames = wire.FrameAssembler().feed(stream)
        assert [f[0] for f in frames] == [wire.KIND_PING,
                                          wire.KIND_PONG]


class TestLimits:
    def _preamble(self, *, version=wire.VERSION, kind=wire.KIND_SPMV,
                  header_len=0, payload_len=0, magic=wire.MAGIC):
        return struct.pack(">2sBBIQ", magic, version, kind,
                           header_len, payload_len)

    def test_payload_length_over_4gib_rejected(self):
        # The length *field* alone must trip the guard: nothing close
        # to 4 GiB is ever allocated or buffered.
        torn = self._preamble(payload_len=(4 << 30) + 8)
        with pytest.raises(WireError, match="payload"):
            wire.FrameAssembler().feed(torn)

    def test_header_length_limit_rejected(self):
        torn = self._preamble(header_len=wire.MAX_HEADER_BYTES + 1)
        with pytest.raises(WireError, match="header"):
            wire.FrameAssembler().feed(torn)

    def test_version_mismatch_rejected(self):
        frame = bytearray(wire.encode_frame(wire.KIND_PING, {}))
        frame[2] = wire.VERSION + 1
        with pytest.raises(WireError, match="version"):
            wire.FrameAssembler().feed(bytes(frame))

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            wire.FrameAssembler().feed(
                self._preamble(magic=b"XX") + b"junk")

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="kind"):
            wire.FrameAssembler().feed(self._preamble(kind=99))

    def test_oversized_encode_rejected(self):
        class FakeHuge(bytes):
            def __len__(self):
                return wire.MAX_PAYLOAD_BYTES

        with pytest.raises(WireError, match="payload"):
            wire.frame_parts(wire.KIND_SPMV, {}, FakeHuge())

    def test_wire_error_is_cluster_error(self):
        assert issubclass(WireError, ClusterError)


class TestTornFrames:
    def test_partial_feed_buffers_until_complete(self, rng):
        x = rng.standard_normal(100)
        _, view = wire.vector_payload(x)
        frame = wire.encode_frame(wire.KIND_SPMV, {"n": 100}, view)
        asm = wire.FrameAssembler()
        frames = []
        step = 7       # never aligned with preamble/header boundaries
        for i in range(0, len(frame), step):
            chunk = frame[i:i + step]
            got = asm.feed(chunk)
            if i + step < len(frame):
                assert got == []
            frames.extend(got)
        assert len(frames) == 1
        assert asm.buffered == 0
        np.testing.assert_array_equal(
            wire.payload_vector(frames[0][2], 100), x)

    def test_truncated_socket_stream_raises(self):
        # A socket that EOFs mid-frame must raise, not return a
        # short frame (recv_frame path).
        import socket as socketlib
        import threading

        frame = wire.encode_frame(wire.KIND_SPMV, {"n": 100},
                                  bytes(800))
        srv = socketlib.create_server(("127.0.0.1", 0))
        port = srv.getsockname()[1]

        def tear():
            conn, _ = srv.accept()
            conn.sendall(frame[:len(frame) // 2])
            conn.close()

        t = threading.Thread(target=tear, daemon=True)
        t.start()
        with socketlib.create_connection(("127.0.0.1", port),
                                         timeout=5) as sock:
            with pytest.raises(WireError, match="truncated"):
                wire.recv_frame(sock)
        t.join(timeout=5)
        srv.close()

    def test_payload_length_mismatch_raises(self):
        with pytest.raises(WireError, match="payload is"):
            wire.payload_vector(b"\0" * 24, 4)
