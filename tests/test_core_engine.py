"""Engine end-to-end: optimizer gating, planning, simulation, execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpmvEngine, OptimizationLevel
from repro.core.engine import config_rectangle
from repro.core.optimizer import (
    OPTIMIZATION_TABLE,
    arch_family,
    ladder,
    optimization_config,
)
from repro.errors import TuningError
from repro.machines import PlacementPolicy, get_machine, machine_names
from repro.matrices import generate

SCALE = 0.04
L = OptimizationLevel


class TestOptimizer:
    def test_families(self):
        assert arch_family(get_machine("AMD X2")) == "x86"
        assert arch_family(get_machine("Clovertown")) == "x86"
        assert arch_family(get_machine("Niagara")) == "niagara"
        assert arch_family(get_machine("Cell (PS3)")) == "cell"

    def test_levels_cumulative_on_x86(self):
        m = get_machine("AMD X2")
        naive = optimization_config(m, L.NAIVE)
        pf = optimization_config(m, L.PF)
        rb = optimization_config(m, L.PF_RB)
        cb = optimization_config(m, L.PF_RB_CB)
        assert not naive.sw_prefetch and pf.sw_prefetch
        assert not pf.register_blocking and rb.register_blocking
        assert not rb.cache_blocking and cb.cache_blocking
        assert cb.tlb_blocking

    def test_cell_always_full_dma_path(self):
        m = get_machine("Cell (PS3)")
        for lvl in L:
            cfg = optimization_config(m, lvl)
            assert cfg.cell_dense_blocking
            assert cfg.index_compress
            assert not cfg.register_blocking

    def test_parallel_numa_policies(self):
        amd = optimization_config(get_machine("AMD X2"), L.FULL,
                                  parallel=True)
        assert amd.policy is PlacementPolicy.NUMA_AWARE
        blade = optimization_config(get_machine("Cell Blade"), L.FULL,
                                    parallel=True)
        assert blade.policy is PlacementPolicy.INTERLEAVE  # §4.4
        clv = optimization_config(get_machine("Clovertown"), L.FULL,
                                  parallel=True)
        assert clv.policy is PlacementPolicy.SINGLE_NODE  # non-NUMA

    def test_ladder_shapes(self):
        assert len(ladder(get_machine("AMD X2"))) == 4
        assert ladder(get_machine("Cell (PS3)")) == [L.FULL]

    def test_table2_contents(self):
        assert OPTIMIZATION_TABLE["register_blocking"]["cell"] == "no"
        assert OPTIMIZATION_TABLE["cache_blocking"]["cell"] == "dense"
        assert OPTIMIZATION_TABLE["branchless"]["x86"] == "no-speedup"

    def test_bad_level(self):
        with pytest.raises(TuningError):
            optimization_config(get_machine("AMD X2"), "super")


class TestConfigRectangle:
    def test_spread_amd(self):
        m = get_machine("AMD X2")
        assert config_rectangle(m, 2, "spread") == (2, 1, 1)
        assert config_rectangle(m, 4, "spread") == (2, 2, 1)

    def test_pack_amd(self):
        m = get_machine("AMD X2")
        assert config_rectangle(m, 2, "pack") == (1, 2, 1)

    def test_niagara_threads(self):
        m = get_machine("Niagara")
        assert config_rectangle(m, 8, "spread") == (1, 8, 1)
        assert config_rectangle(m, 16, "spread") == (1, 8, 2)
        assert config_rectangle(m, 32, "spread") == (1, 8, 4)

    def test_cell(self):
        assert config_rectangle(get_machine("Cell (PS3)"), 6, "pack") == \
            (1, 6, 1)
        assert config_rectangle(get_machine("Cell Blade"), 16, "spread") \
            == (2, 8, 1)

    def test_out_of_range(self):
        with pytest.raises(TuningError):
            config_rectangle(get_machine("AMD X2"), 5, "spread")


@pytest.mark.parametrize("mname", machine_names())
class TestEngineEndToEnd:
    def test_materialized_matches_original(self, mname, rng):
        coo = generate("FEM-Har", scale=SCALE, seed=1)
        eng = SpmvEngine(get_machine(mname))
        tuned = eng.tune(coo, n_threads=1)
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_allclose(tuned(x), coo.spmv(x), rtol=1e-12)

    def test_parallel_plan_covers_everything(self, mname):
        coo = generate("Circuit", scale=SCALE, seed=1)
        m = get_machine(mname)
        eng = SpmvEngine(m)
        plan = eng.plan(coo, n_threads=min(4, m.n_threads))
        assert plan.profile.nnz_logical == coo.nnz_logical

    def test_simulation_runs(self, mname):
        coo = generate("QCD", scale=SCALE, seed=1)
        eng = SpmvEngine(get_machine(mname))
        plan = eng.plan(coo, n_threads=1)
        res = eng.simulate(plan)
        assert res.gflops > 0
        assert res.time_s > 0
        assert res.traffic.total > 0


class TestOptimizationShape:
    """The ladder must behave like Figure 1 (at full matrix scale, the
    optimized footprint shrinks and performance never degrades)."""

    def test_footprint_shrinks_with_rb(self):
        coo = generate("FEM-Cant", scale=SCALE, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        naive = eng.plan(coo, level=L.NAIVE)
        rb = eng.plan(coo, level=L.PF_RB)
        assert rb.footprint_bytes < naive.footprint_bytes

    def test_prefetch_helps_amd(self):
        coo = generate("FEM-Cant", scale=SCALE, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        naive = eng.simulate(eng.plan(coo, level=L.NAIVE))
        pf = eng.simulate(eng.plan(coo, level=L.PF))
        assert pf.gflops > 1.15 * naive.gflops

    def test_ladder_monotone_amd(self):
        coo = generate("FEM-Ship", scale=SCALE, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        rates = [
            eng.simulate(eng.plan(coo, level=lvl)).gflops
            for lvl in [L.NAIVE, L.PF, L.PF_RB, L.PF_RB_CB]
        ]
        for a, b in zip(rates, rates[1:]):
            assert b >= a * 0.98  # never significantly worse

    def test_multicore_beats_serial(self):
        coo = generate("Protein", scale=SCALE, seed=0)
        for mname, threads in [("AMD X2", 4), ("Niagara", 32),
                               ("Cell Blade", 16)]:
            eng = SpmvEngine(get_machine(mname))
            serial = eng.simulate(eng.plan(coo, n_threads=1))
            par = eng.simulate(eng.plan(coo, n_threads=threads))
            assert par.gflops > 1.5 * serial.gflops, mname

    def test_plan_describe(self):
        coo = generate("Econom", scale=SCALE, seed=0)
        eng = SpmvEngine(get_machine("Clovertown"))
        plan = eng.plan(coo, n_threads=2)
        d = plan.describe()
        assert d["machine"] == "Clovertown"
        assert d["n_threads"] == 2
        assert sum(d["block_formats"].values()) == d["n_blocks"]

    def test_plan_footprint_matches_materialized(self):
        coo = generate("FEM-Har", scale=SCALE, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        tuned = eng.tune(coo, level=L.PF_RB, n_threads=1)
        est = tuned.plan.footprint_bytes
        actual = tuned.matrix.footprint_bytes()
        # Estimate counts per-block storage; materialized adds 16B of
        # extent metadata per cache block.
        overhead = 16 * len(tuned.plan.choices)
        assert abs(actual - overhead - est) <= 0.01 * actual
