"""Format-choice and blocking heuristics (paper §4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.formats import COOMatrix, IndexWidth
from repro.core.heuristics import (
    cell_block_specs,
    choose_block_format,
    choose_formats_batch,
    sparse_cache_block_specs,
)
from repro.machines import get_machine


def make_coo(m, n, rows, cols):
    return COOMatrix((m, n), rows, cols, np.ones(len(rows)))


class TestChooseFormat:
    def test_aligned_dense_blocks_pick_big_tiles(self):
        # 4x4 dense tiles on a 4-aligned grid: 4x4 BCSR/BCOO is optimal.
        base = np.array([0, 4, 8, 12])
        rows = np.repeat(np.repeat(base, 4) + np.tile(np.arange(4), 4), 4)
        cols = np.tile(
            (np.repeat(base, 16).reshape(4, 16)
             + np.tile(np.arange(4), 4)).ravel(), 1
        )
        coo = make_coo(16, 16, rows, cols)
        choice = choose_block_format(coo)
        assert (choice.r, choice.c) == (4, 4)
        assert choice.ntiles == 4
        assert choice.nnz_stored == coo.nnz_logical  # no padding

    def test_diagonal_prefers_1x1(self):
        coo = make_coo(64, 64, np.arange(64), np.arange(64))
        choice = choose_block_format(coo)
        assert (choice.r, choice.c) == (1, 1)

    def test_mostly_empty_rows_pick_bcoo(self):
        # 3 nonzeros in a 100_000-row block: CSR pointers cost 400KB.
        coo = make_coo(100_000, 100, np.array([5, 50_000, 99_999]),
                       np.array([1, 2, 3]))
        choice = choose_block_format(coo)
        assert choice.format_name == "bcoo"

    def test_16bit_when_small(self):
        coo = make_coo(100, 100, np.arange(50), np.arange(50))
        choice = choose_block_format(coo)
        assert choice.index_width == IndexWidth.I16

    def test_32bit_when_wide(self):
        n = 70_000
        rows = np.zeros(100, dtype=np.int64)
        cols = np.linspace(0, n - 1, 100).astype(np.int64)
        coo = make_coo(1, n, rows, cols)
        choice = choose_block_format(
            coo, allow_register_blocking=False, allow_bcoo=False
        )
        assert choice.index_width == IndexWidth.I32

    def test_16bit_via_block_columns(self):
        # 4-wide tiles quadruple the 16-bit reach: 200K columns become
        # 50K block columns.
        n = 200_000
        rows = np.zeros(200, dtype=np.int64)
        cols = (np.arange(200) * 997) % n
        coo = make_coo(1, n, rows, np.sort(cols))
        choice = choose_block_format(coo, allow_bcoo=False)
        if choice.c == 4:
            assert choice.index_width == IndexWidth.I16

    def test_rb_disabled_forces_1x1(self):
        coo = make_coo(16, 16, np.arange(16), np.arange(16))
        choice = choose_block_format(coo, allow_register_blocking=False)
        assert (choice.r, choice.c) == (1, 1)

    def test_empty_block_rejected(self):
        with pytest.raises(TuningError):
            choose_block_format(COOMatrix.empty((5, 5)))

    def test_gcsr_candidate_wins_on_sparse_tall(self):
        coo = make_coo(10_000, 50_000, np.array([17, 41]),
                       np.array([100, 40_000]))
        with_g = choose_block_format(coo, allow_gcsr=True,
                                     allow_bcoo=False)
        assert with_g.format_name == "gcsr"


class TestBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(2, 120),
        n=st.integers(2, 120),
        nnz=st.integers(1, 300),
        seed=st.integers(0, 2**31),
        rb=st.booleans(),
        bcoo=st.booleans(),
    )
    def test_batch_matches_scalar(self, m, n, nnz, seed, rb, bcoo):
        rng = np.random.default_rng(seed)
        key = np.unique(rng.integers(0, m * n, nnz))
        rows, cols = key // n, key % n
        coo = make_coo(m, n, rows, cols)
        scalar = choose_block_format(
            coo, allow_register_blocking=rb, allow_bcoo=bcoo
        )
        batch = choose_formats_batch(
            np.zeros(len(rows), dtype=np.int64), rows, cols,
            np.array([m]), np.array([n]),
            allow_register_blocking=rb, allow_bcoo=bcoo,
        )[0]
        assert scalar.footprint == batch.footprint
        assert scalar.format_name == batch.format_name
        assert (scalar.r, scalar.c) == (batch.r, batch.c)
        assert scalar.ntiles == batch.ntiles
        assert scalar.n_segments == batch.n_segments

    def test_multi_block_batch(self):
        rng = np.random.default_rng(3)
        parts = []
        for b in range(3):
            m, n = 40 + 10 * b, 60
            key = np.unique(rng.integers(0, m * n, 120))
            parts.append((key // n, key % n, m, n))
        bid = np.concatenate([
            np.full(len(p[0]), i, dtype=np.int64)
            for i, p in enumerate(parts)
        ])
        lrow = np.concatenate([p[0] for p in parts])
        lcol = np.concatenate([p[1] for p in parts])
        batch = choose_formats_batch(
            bid, lrow, lcol,
            np.array([p[2] for p in parts]),
            np.array([p[3] for p in parts]),
        )
        for i, (rows, cols, m, n) in enumerate(parts):
            scalar = choose_block_format(make_coo(m, n, rows, cols))
            assert batch[i].footprint == scalar.footprint, i
            assert batch[i].format_name == scalar.format_name, i


class TestCacheBlocking:
    def test_specs_cover_matrix(self):
        rng = np.random.default_rng(0)
        coo = make_coo(50_000, 400_000,
                       np.sort(rng.integers(0, 50_000, 5000)),
                       rng.integers(0, 400_000, 5000))
        specs = sparse_cache_block_specs(coo, get_machine("AMD X2"))
        assert specs[0][0] == 0
        assert max(s[1] for s in specs) == 50_000
        # Every panel's column spans tile [0, n).
        by_panel: dict = {}
        for (r0, r1, c0, c1) in specs:
            by_panel.setdefault((r0, r1), []).append((c0, c1))
        for spans in by_panel.values():
            spans.sort()
            assert spans[0][0] == 0
            assert spans[-1][1] == 400_000
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c  # contiguous

    def test_scattered_matrix_gets_multiple_column_blocks(self):
        rng = np.random.default_rng(1)
        n = 3_000_000
        coo = make_coo(1000, n, np.sort(rng.integers(0, 1000, 60_000)),
                       rng.integers(0, n, 60_000))
        specs = sparse_cache_block_specs(coo, get_machine("AMD X2"))
        assert len(specs) > 1

    def test_banded_matrix_single_block_per_panel(self):
        # A narrow band touches few lines: no column cuts needed.
        coo = make_coo(10_000, 10_000, np.arange(10_000),
                       np.arange(10_000))
        specs = sparse_cache_block_specs(coo, get_machine("Clovertown"))
        panels = {(s[0], s[1]) for s in specs}
        assert len(specs) == len(panels)

    def test_tlb_budget_cuts_more(self):
        rng = np.random.default_rng(2)
        n = 8_000_000
        coo = make_coo(500, n, np.sort(rng.integers(0, 500, 40_000)),
                       rng.integers(0, n, 40_000))
        amd = get_machine("AMD X2")  # tiny 32-entry L1 TLB
        with_tlb = sparse_cache_block_specs(coo, amd, tlb_block=True)
        without = sparse_cache_block_specs(coo, amd, tlb_block=False)
        assert len(with_tlb) > len(without)

    def test_rejects_local_store_machine(self):
        coo = make_coo(10, 10, np.arange(5), np.arange(5))
        with pytest.raises(TuningError):
            sparse_cache_block_specs(coo, get_machine("Cell (PS3)"))

    def test_bad_share(self):
        coo = make_coo(10, 10, np.arange(5), np.arange(5))
        with pytest.raises(TuningError):
            sparse_cache_block_specs(coo, get_machine("AMD X2"),
                                     x_share=1.5)


class TestCellBlocking:
    def test_grid_fits_local_store(self):
        coo = make_coo(100_000, 100_000, np.arange(10), np.arange(10))
        m = get_machine("Cell (PS3)")
        specs = cell_block_specs(coo, m)
        for (r0, r1, c0, c1) in specs:
            x_bytes = (c1 - c0) * 8
            y_bytes = (r1 - r0) * 8 * 2
            assert x_bytes + y_bytes <= m.local_store_bytes

    def test_covers_matrix(self):
        coo = make_coo(30_000, 70_000, np.arange(10), np.arange(10))
        specs = cell_block_specs(coo, get_machine("Cell Blade"))
        assert max(s[1] for s in specs) == 30_000
        assert max(s[3] for s in specs) == 70_000

    def test_rejects_cached_machine(self):
        coo = make_coo(10, 10, np.arange(5), np.arange(5))
        with pytest.raises(TuningError):
            cell_block_specs(coo, get_machine("AMD X2"))
