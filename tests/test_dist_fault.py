"""Fault tolerance: SIGKILLed shards respawn, re-attach, and the
dispatch retries to the correct answer."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.dist import RetryPolicy, ShardGroup
from repro.formats import coo_to_csr
from repro.observe.metrics import get_registry
from repro.solvers import conjugate_gradient
from tests.conftest import random_coo
from tests.test_dist_group import _spd_coo


@pytest.fixture
def group():
    g = ShardGroup(
        3,
        heartbeat_interval_s=0.05,
        compute_timeout_s=10.0,
        retry=RetryPolicy(max_retries=3, backoff_s=0.01),
    )
    yield g
    g.close()


def _kill_one(group: ShardGroup) -> int:
    pid = group.shard_pids()[1]
    os.kill(pid, signal.SIGKILL)
    # Wait for the OS to reap it so alive() flips.
    deadline = time.monotonic() + 5.0
    while pid in group.shard_pids() and \
            group._shards[1].alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    return pid


class TestShardDeath:
    def test_spmv_survives_sigkill(self, group):
        reg = get_registry()
        coo = random_coo(200, 200, 0.05, seed=30)
        csr = coo_to_csr(coo)
        fp = group.register(coo)
        x = np.random.default_rng(31).standard_normal(200)
        expected = csr.spmv(x)
        assert np.array_equal(group.spmv(fp, x), expected)

        respawns_before = reg.counter("dist.respawns")
        killed = _kill_one(group)
        # The next dispatch hits the dead shard, revives it (re-attach,
        # not re-copy), retries, and still returns the exact answer.
        copies_before = reg.counter("dist.slab_copies")
        assert np.array_equal(group.spmv(fp, x), expected)
        assert reg.counter("dist.respawns") >= respawns_before + 1
        assert reg.counter("dist.reships") >= 1
        assert reg.counter("dist.slab_copies") == copies_before
        assert killed not in group.shard_pids()
        assert group.describe()["alive"] == 3

    def test_repeated_kills_within_retry_budget(self, group):
        coo = random_coo(150, 150, 0.06, seed=32)
        csr = coo_to_csr(coo)
        fp = group.register(coo)
        x = np.ones(150)
        expected = csr.spmv(x)
        for _ in range(2):
            _kill_one(group)
            assert np.array_equal(group.spmv(fp, x), expected)

    def test_cg_with_mid_solve_kill(self, group):
        # Kill a shard part-way through a CG solve; the solver must
        # converge to the same trajectory as the serial solve because
        # recovery reproduces each matvec bit-for-bit.
        coo = _spd_coo(150, seed=33)
        csr = coo_to_csr(coo)
        fp = group.register(coo)
        op = group.operator(fp)
        rng = np.random.default_rng(34)
        x_true = rng.standard_normal(150)
        b = csr.spmv(x_true)

        calls = {"n": 0}
        real_spmv = op.spmv

        def chaotic_spmv(x, y=None):
            calls["n"] += 1
            if calls["n"] == 3:
                _kill_one(group)
            return real_spmv(x, y)

        op.spmv = chaotic_spmv
        result = conjugate_gradient(op, b, tol=1e-12)
        assert result.converged
        serial = conjugate_gradient(csr, b, tol=1e-12)
        np.testing.assert_array_equal(result.x, serial.x)
        assert calls["n"] >= 3
        assert get_registry().counter("dist.respawns") >= 1

    def test_monitor_revives_idle_group(self, group):
        # No dispatch in flight: the heartbeat monitor alone must
        # notice the death and respawn the worker.
        coo = random_coo(100, 100, 0.05, seed=35)
        fp = group.register(coo)
        _kill_one(group)
        deadline = time.monotonic() + 5.0
        while group.describe()["alive"] < 3 and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert group.describe()["alive"] == 3
        # And the revived shard serves the matrix it re-attached.
        x = np.ones(100)
        assert np.array_equal(group.spmv(fp, x),
                              coo_to_csr(coo).spmv(x))
