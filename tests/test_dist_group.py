"""ShardGroup correctness: bit-identical row path, col reduction,
zero-copy dispatch, lifecycle, solver protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DistError, RetryPolicy, ShardGroup
from repro.errors import ShardDeadError
from repro.formats import COOMatrix, coo_to_csr
from repro.observe.metrics import get_registry
from repro.parallel import partition_cols_balanced
from repro.solvers import conjugate_gradient
from tests.conftest import random_coo


@pytest.fixture
def group():
    g = ShardGroup(3, heartbeat_interval_s=0.1, compute_timeout_s=10.0)
    yield g
    g.close()


def _spd_coo(n: int, seed: int = 0) -> COOMatrix:
    """Diagonally dominant symmetric matrix (CG-friendly)."""
    a = random_coo(n, n, 0.05, seed=seed)
    at = a.transpose()
    diag = np.arange(n)
    row = np.concatenate([a.row, at.row, diag])
    col = np.concatenate([a.col, at.col, diag])
    val = np.concatenate([a.val / 2, at.val / 2,
                          np.full(n, float(n))])
    return COOMatrix((n, n), row, col, val)


class TestRowPath:
    def test_spmv_bit_identical_to_serial(self, group):
        coo = random_coo(200, 150, 0.05, seed=3)
        csr = coo_to_csr(coo)
        fp = group.register(coo)
        rng = np.random.default_rng(5)
        # Repeated calls: the slabs are resident, each dispatch must
        # still agree bitwise with one serial sweep.
        for _ in range(4):
            x = rng.standard_normal(150)
            assert np.array_equal(group.spmv(fp, x), csr.spmv(x))

    def test_spmm_bit_identical(self, group):
        coo = random_coo(120, 90, 0.08, seed=4)
        csr = coo_to_csr(coo)
        fp = group.register(coo)
        x_block = np.random.default_rng(6).standard_normal((90, 5))
        y_block = group.spmm(fp, x_block)
        for j in range(5):
            assert np.array_equal(y_block[:, j], csr.spmv(x_block[:, j]))

    def test_spmm_wider_than_k_cap_chunks(self):
        with ShardGroup(2, k_cap=3) as g:
            coo = random_coo(80, 60, 0.1, seed=7)
            csr = coo_to_csr(coo)
            fp = g.register(coo)
            x_block = np.random.default_rng(8).standard_normal((60, 10))
            y_block = g.spmm(fp, x_block)
            for j in range(10):
                assert np.array_equal(y_block[:, j],
                                      csr.spmv(x_block[:, j]))

    def test_no_slab_copies_after_registration(self, group):
        reg = get_registry()
        coo = random_coo(150, 150, 0.05, seed=9)
        fp = group.register(coo)
        copies_after_register = reg.counter("dist.slab_copies")
        ships_after_register = reg.counter("dist.slab_ship_bytes")
        x = np.ones(150)
        for _ in range(6):
            group.spmv(fp, x)
        group.spmm(fp, np.ones((150, 4)))
        # The request path moves only x/y vectors; slabs never recopy.
        assert reg.counter("dist.slab_copies") == copies_after_register
        assert reg.counter("dist.slab_ship_bytes") == \
            ships_after_register

    def test_register_idempotent(self, group):
        coo = random_coo(60, 60, 0.1, seed=10)
        fp1 = group.register(coo)
        fp2 = group.register(coo)
        assert fp1 == fp2
        assert group.describe()["matrices"] == 1


class TestColPath:
    def test_spmv_close_to_serial(self):
        with ShardGroup(3, partition="col") as g:
            coo = random_coo(150, 200, 0.05, seed=12)
            csr = coo_to_csr(coo)
            fp = g.register(coo)
            x = np.random.default_rng(13).standard_normal(200)
            np.testing.assert_allclose(
                g.spmv(fp, x), csr.spmv(x), rtol=1e-12, atol=1e-12
            )

    def test_partition_cols_round_trips_through_reduction(self):
        # The col path consumes partition_cols_balanced: each shard
        # owns cols [lo, hi) and the parent reduces partial y's. The
        # reduction must reconstruct the full product for a partition
        # whose column slabs have very uneven nonzero counts.
        rng = np.random.default_rng(14)
        heavy = rng.integers(0, 20, size=4000)      # 20 dense columns
        light = rng.integers(20, 400, size=1000)
        cols = np.concatenate([heavy, light])
        rows = rng.integers(0, 300, size=5000)
        coo = COOMatrix((300, 400), rows, cols,
                        rng.standard_normal(5000))
        part = partition_cols_balanced(coo, 3)
        assert part.nnz_per_part.sum() == coo.nnz_logical
        with ShardGroup(3, partition="col") as g:
            fp = g.register(coo)
            x = rng.standard_normal(400)
            np.testing.assert_allclose(
                g.spmv(fp, x), coo_to_csr(coo).spmv(x),
                rtol=1e-12, atol=1e-12,
            )

    def test_spmm_col(self):
        with ShardGroup(2, partition="col") as g:
            coo = random_coo(90, 70, 0.1, seed=15)
            csr = coo_to_csr(coo)
            fp = g.register(coo)
            x_block = np.random.default_rng(16).standard_normal((70, 4))
            got = g.spmm(fp, x_block)
            for j in range(4):
                np.testing.assert_allclose(
                    got[:, j], csr.spmv(x_block[:, j]),
                    rtol=1e-12, atol=1e-12,
                )


class TestSerialFallback:
    def test_single_shard_runs_serial(self):
        with ShardGroup(1) as g:
            assert g.serial
            coo = random_coo(50, 40, 0.1, seed=17)
            fp = g.register(coo)
            x = np.ones(40)
            assert np.array_equal(g.spmv(fp, x),
                                  coo_to_csr(coo).spmv(x))
            assert g.describe()["serial"]

    @pytest.mark.parametrize("shape,nnz", [((0, 5), 0), ((5, 0), 0),
                                           ((6, 6), 0)])
    def test_degenerate_matrices(self, group, shape, nnz):
        coo = COOMatrix(shape, np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64), np.zeros(0))
        fp = group.register(coo)
        y = group.spmv(fp, np.ones(shape[1]))
        assert y.shape == (shape[0],)
        assert np.array_equal(y, np.zeros(shape[0]))
        got = group.spmm(fp, np.ones((shape[1], 3)))
        assert got.shape == (shape[0], 3)


class TestLifecycle:
    def test_unregister_frees_segments(self, group):
        coo = random_coo(100, 100, 0.05, seed=18)
        fp = group.register(coo)
        assert group.describe()["shm_bytes"] > 0
        group.unregister(fp)
        assert group.describe()["matrices"] == 0
        assert group.describe()["shm_bytes"] == 0
        with pytest.raises(DistError, match="unknown matrix"):
            group.spmv(fp, np.ones(100))
        group.unregister(fp)   # second call is a no-op

    def test_closed_group_rejects_work(self):
        g = ShardGroup(2)
        coo = random_coo(30, 30, 0.1, seed=19)
        fp = g.register(coo)
        g.close()
        with pytest.raises(DistError, match="closed"):
            g.spmv(fp, np.ones(30))
        with pytest.raises(DistError, match="closed"):
            g.register(random_coo(10, 10, 0.2, seed=20))
        g.close()   # idempotent

    def test_constructor_validation(self):
        with pytest.raises(DistError):
            ShardGroup(0)
        with pytest.raises(DistError):
            ShardGroup(2, partition="diagonal")
        with pytest.raises(DistError):
            ShardGroup(2, k_cap=0)

    def test_shape_validation(self, group):
        coo = random_coo(40, 30, 0.1, seed=21)
        fp = group.register(coo)
        with pytest.raises(DistError, match="shape"):
            group.spmv(fp, np.ones(31))
        with pytest.raises(DistError, match="shape"):
            group.spmm(fp, np.ones((29, 2)))
        with pytest.raises(DistError, match="unknown"):
            group.spmv("nope", np.ones(30))

    def test_describe(self, group):
        d = group.describe()
        assert d["n_shards"] == 3
        assert d["alive"] == 3
        assert not d["serial"]
        assert len(group.shard_pids()) == 3


class TestSolverProtocol:
    def test_cg_through_shard_operator(self, group):
        coo = _spd_coo(120, seed=22)
        fp = group.register(coo)
        op = group.operator(fp)
        assert op.shape == (120, 120)
        rng = np.random.default_rng(23)
        x_true = rng.standard_normal(120)
        b = coo_to_csr(coo).spmv(x_true)
        result = conjugate_gradient(op, b, tol=1e-12)
        assert result.converged
        # The row path is bit-identical to serial SpMV, so the sharded
        # CG trajectory matches the serial solve exactly.
        serial = conjugate_gradient(coo_to_csr(coo), b, tol=1e-12)
        np.testing.assert_array_equal(result.x, serial.x)
        assert result.iterations == serial.iterations

    def test_operator_accumulates_into_y(self, group):
        coo = random_coo(50, 50, 0.1, seed=24)
        fp = group.register(coo)
        op = group.operator(fp)
        x = np.ones(50)
        y = np.ones(50)
        out = op.spmv(x, y)
        assert out is y
        np.testing.assert_array_equal(
            y, coo_to_csr(coo).spmv(x) + 1.0
        )


class TestRetryPolicy:
    def test_backoff_doubles(self):
        p = RetryPolicy(max_retries=4, backoff_s=0.1)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)

    def test_shard_dead_error_is_dist_error(self):
        assert issubclass(ShardDeadError, DistError)
