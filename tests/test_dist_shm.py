"""Shared-memory codec: segment roundtrip, attach, unlink discipline."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.dist.shm import (
    SEGMENT_PREFIX,
    SegmentArena,
    attach_array,
    attach_csr,
)
from repro.formats import coo_to_csr
from tests.conftest import random_coo


def _shm_listing() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


class TestSegmentArena:
    def test_create_roundtrip(self):
        arena = SegmentArena()
        try:
            view, spec = arena.create((7, 3), np.float64)
            assert view.shape == (7, 3)
            assert (view == 0.0).all()
            view[:] = np.arange(21.0).reshape(7, 3)
            attached, seg = attach_array(spec)
            try:
                np.testing.assert_array_equal(
                    attached, np.arange(21.0).reshape(7, 3)
                )
                # Same pages, not a copy: writes are visible both ways.
                attached[0, 0] = -5.0
                assert view[0, 0] == -5.0
            finally:
                seg.close()
        finally:
            arena.unlink_all()

    def test_ship_copies_once(self):
        arena = SegmentArena()
        try:
            src = np.linspace(0.0, 1.0, 16)
            spec = arena.ship(src)
            src[:] = 99.0     # mutating the source must not leak through
            attached, seg = attach_array(spec)
            try:
                np.testing.assert_array_equal(
                    attached, np.linspace(0.0, 1.0, 16)
                )
            finally:
                seg.close()
        finally:
            arena.unlink_all()

    def test_csr_slab_roundtrip(self):
        coo = random_coo(40, 30, 0.1, seed=11)
        csr = coo_to_csr(coo)
        arena = SegmentArena()
        try:
            spec = arena.ship_csr(csr)
            attached, segs = attach_csr(spec)
            try:
                x = np.random.default_rng(0).standard_normal(30)
                np.testing.assert_array_equal(
                    attached.spmv(x), csr.spmv(x)
                )
                assert attached.index_width == csr.index_width
            finally:
                for seg in segs:
                    seg.close()
        finally:
            arena.unlink_all()

    def test_zero_size_segment(self):
        arena = SegmentArena()
        try:
            view, spec = arena.create((0,), np.float64)
            assert view.shape == (0,)
            attached, seg = attach_array(spec)
            try:
                assert attached.shape == (0,)
            finally:
                seg.close()
        finally:
            arena.unlink_all()

    def test_unlink_all_removes_segments_and_is_idempotent(self):
        arena = SegmentArena()
        before = set(_shm_listing())
        arena.create((64,), np.float64)
        arena.ship(np.ones(8))
        created = set(_shm_listing()) - before
        assert len(created) == 2
        assert arena.total_bytes > 0
        arena.unlink_all()
        assert set(_shm_listing()) & created == set()
        assert arena.total_bytes == 0
        arena.unlink_all()   # second call must be a no-op, not an error

    def test_accounting_gauge(self):
        from repro.observe.metrics import get_registry
        reg = get_registry()
        arena = SegmentArena()
        try:
            base = reg.gauge_value("dist.shm_bytes")
            arena.create((128,), np.float64)
            assert reg.gauge_value("dist.shm_bytes") >= base + 128 * 8
        finally:
            arena.unlink_all()
        assert reg.gauge_value("dist.shm_bytes") == pytest.approx(base)
