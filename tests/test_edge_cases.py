"""Failure injection and degenerate-shape robustness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimizationLevel, SpmvEngine
from repro.core.plan import forced_index_width
from repro.core.optimizer import optimization_config
from repro.errors import TuningError
from repro.formats import COOMatrix, IndexWidth, coo_to_csr
from repro.machines import get_machine, machine_names


def tiny(shape, entries):
    rows = [e[0] for e in entries]
    cols = [e[1] for e in entries]
    vals = [e[2] for e in entries]
    return COOMatrix(shape, rows, cols, vals)


@pytest.mark.parametrize("mname", machine_names())
class TestDegenerateShapes:
    def test_one_by_one(self, mname):
        coo = tiny((1, 1), [(0, 0, 3.0)])
        eng = SpmvEngine(get_machine(mname))
        tuned = eng.tune(coo)
        assert tuned(np.array([2.0]))[0] == 6.0
        assert eng.simulate(tuned.plan).gflops > 0

    def test_single_row(self, mname):
        coo = tiny((1, 1000), [(0, k, 1.0) for k in range(0, 1000, 37)])
        eng = SpmvEngine(get_machine(mname))
        tuned = eng.tune(coo)
        x = np.ones(1000)
        assert tuned(x)[0] == pytest.approx(coo.nnz_logical)

    def test_single_column(self, mname):
        coo = tiny((1000, 1), [(k, 0, 2.0) for k in range(0, 1000, 41)])
        eng = SpmvEngine(get_machine(mname))
        tuned = eng.tune(coo)
        y = tuned(np.array([1.5]))
        assert y.sum() == pytest.approx(3.0 * coo.nnz_logical)

    def test_mostly_empty(self, mname):
        coo = tiny((50_000, 50_000), [(17, 23, 1.0), (49_999, 0, 2.0)])
        eng = SpmvEngine(get_machine(mname))
        tuned = eng.tune(coo)
        x = np.ones(50_000)
        y = tuned(x)
        assert y[17] == 1.0 and y[49_999] == 2.0
        assert y.sum() == 3.0


class TestFailureInjection:
    def test_empty_matrix_plan_fails_cleanly(self):
        coo = COOMatrix.empty((100, 100))
        eng = SpmvEngine(get_machine("AMD X2"))
        plan = eng.plan(coo)  # no nonzeros → no blocks, still a plan
        assert plan.profile.nnz_logical == 0
        mat = plan.materialize(coo)
        assert mat.spmv(np.ones(100)).sum() == 0.0

    def test_materialize_wrong_matrix(self):
        eng = SpmvEngine(get_machine("AMD X2"))
        a = tiny((10, 10), [(1, 1, 1.0)])
        b = tiny((11, 10), [(1, 1, 1.0)])
        plan = eng.plan(a)
        with pytest.raises(TuningError):
            plan.materialize(b)

    def test_thread_overflow(self):
        eng = SpmvEngine(get_machine("AMD X2"))
        a = tiny((10, 10), [(1, 1, 1.0)])
        with pytest.raises(Exception):
            eng.plan(a, n_threads=4096)

    def test_forced_index_width(self):
        cfg16 = optimization_config(get_machine("AMD X2"),
                                    OptimizationLevel.FULL)
        assert forced_index_width(cfg16, 1000) is IndexWidth.I16
        assert forced_index_width(cfg16, 100_000) is IndexWidth.I32
        cfg32 = optimization_config(get_machine("AMD X2"),
                                    OptimizationLevel.NAIVE)
        assert forced_index_width(cfg32, 1000) is IndexWidth.I32

    def test_nan_values_flow_through(self):
        # The library is IEEE-transparent: NaNs propagate, never crash.
        coo = tiny((3, 3), [(0, 0, float("nan")), (1, 1, 1.0)])
        csr = coo_to_csr(coo)
        y = csr.spmv(np.ones(3))
        assert np.isnan(y[0]) and y[1] == 1.0

    def test_huge_values_no_overflow_error(self):
        coo = tiny((2, 2), [(0, 0, 1e308), (1, 1, 1e308)])
        y = coo_to_csr(coo).spmv(np.full(2, 10.0))
        assert np.isinf(y).all()  # IEEE inf, not an exception


class TestPlanInternals:
    def test_choices_and_blocks_aligned(self):
        from repro.matrices import generate

        coo = generate("Circuit", scale=0.03, seed=0)
        eng = SpmvEngine(get_machine("Clovertown"))
        plan = eng.plan(coo, n_threads=2)
        assert len(plan.choices) == len(plan.profile.blocks)
        for (ext, choice), blk in zip(plan.choices,
                                      plan.profile.blocks):
            assert ext == blk.extent
            assert choice.format_name == blk.format_name
            assert choice.footprint == blk.matrix_bytes

    def test_all_nnz_covered_exactly_once(self):
        from repro.matrices import generate

        coo = generate("QCD", scale=0.04, seed=0)
        for mname in machine_names():
            eng = SpmvEngine(get_machine(mname))
            plan = eng.plan(coo, n_threads=1)
            assert plan.profile.nnz_logical == coo.nnz_logical, mname

    def test_cell_block_spans_fit_16bit(self):
        from repro.matrices import generate

        coo = generate("Webbase", scale=0.05, seed=0)
        eng = SpmvEngine(get_machine("Cell (PS3)"))
        plan = eng.plan(coo)
        for _, choice in plan.choices:
            assert choice.index_bytes == 2
