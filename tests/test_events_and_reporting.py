"""SimResult/report cosmetics and engine simulate overrides."""

from __future__ import annotations

import pytest

from repro.core import OptimizationLevel, SpmvEngine
from repro.machines import get_machine
from repro.matrices import generate
from repro.simulator.cpu import KernelVariant
from repro.simulator.events import (
    TrafficBreakdown,
    ZERO_TRAFFIC,
)


class TestEvents:
    def test_zero_traffic(self):
        assert ZERO_TRAFFIC.total == 0.0
        t = ZERO_TRAFFIC + TrafficBreakdown(1.0, 2.0, 3.0)
        assert t.total == 6.0

    def test_summary_strings(self):
        coo = generate("QCD", scale=0.03, seed=0)
        eng = SpmvEngine(get_machine("Niagara"))
        res = eng.simulate(eng.plan(coo, n_threads=8))
        s = res.summary()
        assert "Niagara" in s and "Gflop/s" in s
        assert res.mflops == pytest.approx(res.gflops * 1e3)


class TestSimulateOverrides:
    def test_prefetch_override(self):
        coo = generate("FEM-Cant", scale=0.1, seed=0)
        eng = SpmvEngine(get_machine("AMD X2"))
        plan = eng.plan(coo, level=OptimizationLevel.PF)
        with_pf = eng.simulate(plan)
        without = eng.simulate(plan, sw_prefetch=False)
        assert with_pf.gflops > without.gflops

    def test_variant_override(self):
        coo = generate("Circuit", scale=0.05, seed=0)
        eng = SpmvEngine(get_machine("Niagara"))
        plan = eng.plan(coo, level=OptimizationLevel.PF)
        opt = eng.simulate(plan)
        naive = eng.simulate(plan, variant=KernelVariant())
        assert opt.gflops >= naive.gflops

    def test_numa_assignment_exposed(self):
        coo = generate("Econom", scale=0.03, seed=0)
        m = get_machine("Cell Blade")
        eng = SpmvEngine(m)
        plan = eng.plan(coo, n_threads=16)
        assign = eng.numa_assignment(plan)
        assert assign.n_threads == 16
        assert set(assign.socket_of_thread) == {0, 1}
