"""Unit tests for BCSR, BCOO and cache-blocked formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError, MatrixFormatError
from repro.formats import (
    COOMatrix,
    IndexWidth,
    to_bcoo,
    to_bcsr,
    to_cache_blocked,
)
from repro.formats.bcsr import POWER_OF_TWO_BLOCKS
from repro.formats.convert import count_tiles, uniform_block_specs

ALL_BLOCKS = list(POWER_OF_TWO_BLOCKS)


class TestBCSR:
    @pytest.mark.parametrize("r,c", ALL_BLOCKS)
    def test_roundtrip(self, small_coo, r, c):
        b = to_bcsr(small_coo, r, c)
        np.testing.assert_allclose(b.toarray(), small_coo.toarray())

    @pytest.mark.parametrize("r,c", ALL_BLOCKS)
    def test_spmv(self, small_coo, rng, r, c):
        b = to_bcsr(small_coo, r, c)
        x = rng.standard_normal(b.ncols)
        np.testing.assert_allclose(b.spmv(x), small_coo.toarray() @ x,
                                   rtol=1e-12)

    def test_fill_ratio_one_for_1x1(self, small_coo):
        b = to_bcsr(small_coo, 1, 1)
        assert b.fill_ratio == 1.0
        assert b.nnz_stored == small_coo.nnz_logical

    def test_fill_ratio_one_for_dense_blocks(self, blocky_coo):
        b = to_bcsr(blocky_coo, 2, 2)
        # Entries were generated on an aligned 2x2 grid: no padding.
        assert b.fill_ratio == pytest.approx(1.0)

    def test_padding_counted(self):
        # A diagonal defeats 2x2 blocking: each tile holds 2 of 4 slots.
        coo = COOMatrix((4, 4), [0, 1, 2, 3], [0, 1, 2, 3], [1.0] * 4)
        b = to_bcsr(coo, 2, 2)
        assert b.nnz_logical == 4
        assert b.nnz_stored == 8
        assert b.fill_ratio == 2.0

    def test_count_tiles_matches_materialized(self, small_coo):
        for r, c in ALL_BLOCKS:
            assert count_tiles(small_coo, r, c) == to_bcsr(small_coo, r, c).ntiles

    def test_footprint_estimate_matches_actual(self, small_coo):
        for r, c in [(1, 1), (2, 2), (4, 2)]:
            b = to_bcsr(small_coo, r, c)
            est = type(b).estimate_footprint(
                b.ntiles, r, c, b.n_brows, b.index_width
            )
            assert est == b.footprint_bytes()

    def test_ragged_edge(self, rng):
        # 5x7 matrix with 4x4 tiles: edge tiles exceed matrix bounds.
        coo = COOMatrix((5, 7), [4, 0, 3], [6, 0, 5], [1.0, 2.0, 3.0])
        b = to_bcsr(coo, 4, 4)
        np.testing.assert_allclose(b.toarray(), coo.toarray())
        x = rng.standard_normal(7)
        np.testing.assert_allclose(b.spmv(x), coo.toarray() @ x)

    def test_bad_block_dims(self, small_coo):
        with pytest.raises((MatrixFormatError, ConversionError)):
            to_bcsr(small_coo, 0, 2)


class TestBCOO:
    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (1, 4), (4, 1)])
    def test_roundtrip(self, small_coo, r, c):
        b = to_bcoo(small_coo, r, c)
        np.testing.assert_allclose(b.toarray(), small_coo.toarray())

    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (4, 4)])
    def test_spmv(self, small_coo, rng, r, c):
        b = to_bcoo(small_coo, r, c)
        x = rng.standard_normal(b.ncols)
        np.testing.assert_allclose(b.spmv(x), small_coo.toarray() @ x,
                                   rtol=1e-12)

    def test_no_row_pointer_cost(self):
        # One nonzero in a 10^4-row matrix: BCOO footprint independent of m.
        coo = COOMatrix((10_000, 10), [5_000], [3], [1.0])
        b = to_bcoo(coo, 1, 1, index_width=IndexWidth.I32)
        assert b.footprint_bytes() == 8 + 2 * 4

    def test_beats_csr_on_mostly_empty_rows(self):
        m = 10_000
        coo = COOMatrix((m, 100), [1, 2, 3], [1, 2, 3], [1.0, 1.0, 1.0])
        from repro.formats import coo_to_csr

        bcoo = to_bcoo(coo, 1, 1)
        csr = coo_to_csr(coo)
        assert bcoo.footprint_bytes() < csr.footprint_bytes()

    def test_duplicate_tiles_with_scatter(self, rng):
        # Multiple tiles mapping to the same block row exercise np.add.at.
        coo = COOMatrix((2, 64), [0] * 8 + [1] * 8,
                        list(range(0, 64, 8)) + list(range(4, 64, 8)),
                        rng.standard_normal(16))
        b = to_bcoo(coo, 2, 2)
        x = rng.standard_normal(64)
        np.testing.assert_allclose(b.spmv(x), coo.toarray() @ x, rtol=1e-12)


class TestCacheBlocked:
    def test_uniform_specs_cover(self, small_coo):
        specs = uniform_block_specs(small_coo.shape, 16, 16)
        cb = to_cache_blocked(small_coo, specs)
        np.testing.assert_allclose(cb.toarray(), small_coo.toarray())

    def test_spmv(self, small_coo, rng):
        specs = uniform_block_specs(small_coo.shape, 32, 16)
        cb = to_cache_blocked(small_coo, specs)
        x = rng.standard_normal(cb.ncols)
        np.testing.assert_allclose(cb.spmv(x), small_coo.toarray() @ x,
                                   rtol=1e-12)

    def test_incomplete_specs_rejected(self, small_coo):
        m, n = small_coo.shape
        if small_coo.nnz_logical == 0:
            pytest.skip("needs nonzeros")
        specs = [(0, max(1, m // 2), 0, n)]  # misses the bottom half
        bottom = small_coo.submatrix(max(1, m // 2), m, 0, n)
        if bottom.nnz_logical == 0:
            pytest.skip("bottom half happens to be empty")
        with pytest.raises(ConversionError):
            to_cache_blocked(small_coo, specs)

    def test_empty_blocks_dropped(self):
        coo = COOMatrix((100, 100), [0], [0], [1.0])
        specs = uniform_block_specs((100, 100), 10, 10)
        cb = to_cache_blocked(coo, specs)
        assert cb.n_blocks == 1

    def test_custom_chooser(self, blocky_coo):
        from repro.formats.convert import to_bcsr as _to_bcsr

        cb = to_cache_blocked(
            blocky_coo,
            uniform_block_specs(blocky_coo.shape, 64, 64),
            choose=lambda local: _to_bcsr(local, 2, 2),
        )
        assert set(cb.format_census()) == {"bcsr"}
        np.testing.assert_allclose(cb.toarray(), blocky_coo.toarray())

    def test_footprint_includes_metadata(self, small_coo):
        specs = uniform_block_specs(small_coo.shape, 16, 16)
        cb = to_cache_blocked(small_coo, specs)
        subtotal = sum(b.matrix.footprint_bytes() for b in cb.blocks)
        assert cb.footprint_bytes() == subtotal + 16 * cb.n_blocks

    def test_no_specs_rejected(self, small_coo):
        with pytest.raises(ConversionError):
            to_cache_blocked(small_coo, [])
