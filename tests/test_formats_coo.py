"""Unit tests for the COO interchange format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.formats import COOMatrix


class TestConstruction:
    def test_basic_triplets(self):
        m = COOMatrix((3, 3), [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        assert m.shape == (3, 3)
        assert m.nnz_logical == 3
        np.testing.assert_allclose(m.toarray(), np.diag([1.0, 2.0, 3.0]))

    def test_sorts_row_major(self):
        m = COOMatrix((2, 2), [1, 0, 1], [0, 1, 1], [3.0, 1.0, 4.0])
        assert list(m.row) == [0, 1, 1]
        assert list(m.col) == [1, 0, 1]
        assert list(m.val) == [1.0, 3.0, 4.0]

    def test_duplicates_summed(self):
        m = COOMatrix((2, 2), [0, 0, 0], [1, 1, 0], [1.0, 2.0, 5.0])
        assert m.nnz_logical == 2
        assert m.toarray()[0, 1] == 3.0
        assert m.toarray()[0, 0] == 5.0

    def test_row_out_of_range_raises(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_col_out_of_range_raises(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix((2, 2), [0], [-1], [1.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_negative_shape_raises(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix((-1, 2), [], [], [])

    def test_zero_dim_with_entries_raises(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix((0, 5), [0], [0], [1.0])

    def test_empty(self):
        m = COOMatrix.empty((4, 7))
        assert m.nnz_logical == 0
        assert m.spmv(np.ones(7)).tolist() == [0.0] * 4

    def test_from_dense_roundtrip(self, rng):
        d = rng.standard_normal((13, 9))
        d[d < 0.5] = 0.0
        m = COOMatrix.from_dense(d)
        np.testing.assert_allclose(m.toarray(), d)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            COOMatrix.from_dense(np.ones(4))


class TestOps:
    def test_spmv_matches_dense(self, small_coo, rng):
        x = rng.standard_normal(small_coo.ncols)
        y = small_coo.spmv(x)
        np.testing.assert_allclose(y, small_coo.toarray() @ x, rtol=1e-12)

    def test_spmv_accumulates(self, small_coo, rng):
        x = rng.standard_normal(small_coo.ncols)
        y0 = rng.standard_normal(small_coo.nrows)
        y = small_coo.spmv(x, y0.copy())
        np.testing.assert_allclose(y, y0 + small_coo.toarray() @ x, rtol=1e-12)

    def test_spmv_wrong_x_shape(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.spmv(np.ones(small_coo.ncols + 1))

    def test_spmv_wrong_y_shape(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.spmv(np.ones(small_coo.ncols),
                           np.zeros(small_coo.nrows + 1))

    def test_transpose(self, small_coo, rng):
        t = small_coo.transpose()
        assert t.shape == (small_coo.ncols, small_coo.nrows)
        np.testing.assert_allclose(t.toarray(), small_coo.toarray().T)

    def test_row_counts(self, small_coo):
        counts = small_coo.row_counts()
        assert counts.sum() == small_coo.nnz_logical
        dense_counts = (small_coo.toarray() != 0).sum(axis=1)
        # Explicit zeros may make stored > dense count; allow >=.
        assert (counts >= dense_counts).all()

    def test_submatrix(self, small_coo):
        m, n = small_coo.shape
        r0, r1 = 0, max(1, m // 2)
        c0, c1 = max(0, n // 4), n
        sub = small_coo.submatrix(r0, r1, c0, c1)
        np.testing.assert_allclose(
            sub.toarray(), small_coo.toarray()[r0:r1, c0:c1]
        )

    def test_eliminate_zeros(self):
        m = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 2.0])
        pruned = m.eliminate_zeros()
        assert pruned.nnz_logical == 1
        np.testing.assert_allclose(pruned.toarray(), m.toarray())

    def test_naive_bytes_is_16_per_nnz(self, small_coo):
        assert small_coo.naive_bytes() == 16 * small_coo.nnz_logical
