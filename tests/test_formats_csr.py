"""Unit tests for CSR / GCSR formats and conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexWidthError, MatrixFormatError
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    IndexWidth,
    coo_to_csr,
    to_gcsr,
)


class TestCSRConstruction:
    def test_valid(self):
        m = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            m.toarray(), [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]
        )

    def test_bad_indptr_length(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix((2, 3), [0, 2], [0, 2], [1.0, 2.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix((2, 3), [1, 2, 2], [0], [1.0])

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix((2, 3), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_indptr_decreasing_rejected(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix((2, 3), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_16bit_rejected_for_wide_matrix(self):
        n = 70_000
        with pytest.raises(IndexWidthError):
            CSRMatrix((1, n), [0, 1], [n - 1], [1.0],
                      index_width=IndexWidth.I16)

    def test_16bit_accepted_for_narrow_matrix(self):
        m = CSRMatrix((1, 100), [0, 1], [99], [1.0],
                      index_width=IndexWidth.I16)
        assert m.indices.dtype == np.uint16


class TestCSRRoundtrip:
    def test_coo_csr_coo(self, small_coo):
        csr = coo_to_csr(small_coo)
        back = csr.to_coo()
        np.testing.assert_allclose(back.toarray(), small_coo.toarray())

    def test_spmv_matches_reference(self, small_coo, rng):
        csr = coo_to_csr(small_coo)
        x = rng.standard_normal(csr.ncols)
        np.testing.assert_allclose(
            csr.spmv(x), small_coo.toarray() @ x, rtol=1e-12
        )

    def test_spmv_matches_scipy(self, small_coo, rng):
        import scipy.sparse as sp

        csr = coo_to_csr(small_coo)
        s = sp.csr_matrix(small_coo.toarray())
        x = rng.standard_normal(csr.ncols)
        np.testing.assert_allclose(csr.spmv(x), s @ x, rtol=1e-12)

    def test_rowwise_kernel_agrees(self, rng):
        coo = COOMatrix((20, 20), rng.integers(0, 20, 60),
                        rng.integers(0, 20, 60), rng.standard_normal(60))
        csr = coo_to_csr(coo)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(csr.spmv_rowwise(x), csr.spmv(x),
                                   rtol=1e-12)

    def test_empty_rows_handled(self):
        # Rows 0 and 2 empty — the reduceat sharp edge.
        coo = COOMatrix((4, 4), [1, 3], [0, 3], [5.0, 7.0])
        csr = coo_to_csr(coo)
        y = csr.spmv(np.ones(4))
        np.testing.assert_allclose(y, [0.0, 5.0, 0.0, 7.0])

    def test_all_empty(self):
        csr = coo_to_csr(COOMatrix.empty((5, 5)))
        assert csr.spmv(np.ones(5)).tolist() == [0.0] * 5

    def test_footprint(self):
        csr = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        # 3 values * 8 + 3 idx * 4 + 3 ptrs * 4
        assert csr.footprint_bytes() == 24 + 12 + 12
        csr16 = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0],
                          index_width=IndexWidth.I16)
        assert csr16.footprint_bytes() == 24 + 6 + 12

    def test_row_slice(self, small_coo, rng):
        csr = coo_to_csr(small_coo)
        m = csr.nrows
        r0, r1 = m // 4, max(m // 4 + 1, 3 * m // 4)
        r1 = min(r1, m)
        sl = csr.row_slice(r0, r1)
        np.testing.assert_allclose(
            sl.toarray(), small_coo.toarray()[r0:r1, :]
        )

    def test_row_slice_bad_range(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(MatrixFormatError):
            csr.row_slice(2, 1)


class TestGCSR:
    def test_roundtrip(self, small_coo):
        g = to_gcsr(small_coo)
        np.testing.assert_allclose(g.toarray(), small_coo.toarray())

    def test_spmv(self, small_coo, rng):
        g = to_gcsr(small_coo)
        x = rng.standard_normal(g.ncols)
        np.testing.assert_allclose(g.spmv(x), small_coo.toarray() @ x,
                                   rtol=1e-12)

    def test_empty_rows_cost_nothing(self):
        # 100 rows, only 2 non-empty: GCSR beats CSR on pointer bytes.
        coo = COOMatrix((100, 10), [3, 97], [1, 2], [1.0, 2.0])
        g = to_gcsr(coo)
        csr = coo_to_csr(coo)
        assert g.n_stored_rows == 2
        assert g.footprint_bytes() < csr.footprint_bytes()

    def test_row_ids_strictly_ascending_enforced(self):
        from repro.formats import GCSRMatrix

        with pytest.raises(MatrixFormatError):
            GCSRMatrix((5, 5), [2, 2], [0, 1, 2], [0, 1], [1.0, 2.0])

    def test_rejects_empty_stored_row(self):
        from repro.formats import GCSRMatrix

        with pytest.raises(MatrixFormatError):
            GCSRMatrix((5, 5), [1, 2], [0, 0, 2], [0, 1], [1.0, 2.0])
