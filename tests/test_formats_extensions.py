"""Symmetric storage and multiple-vector SpMM extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.formats import COOMatrix, coo_to_csr, to_bcsr, to_cache_blocked
from repro.formats.convert import uniform_block_specs
from repro.formats.multivector import spmm, spmm_intensity_gain
from repro.formats.symmetric import SymmetricCSRMatrix
from tests.conftest import random_coo


def symmetric_coo(n, density, seed):
    a = random_coo(n, n, density, seed=seed)
    at = a.transpose()
    row = np.concatenate([a.row, at.row])
    col = np.concatenate([a.col, at.col])
    val = np.concatenate([a.val / 2, at.val / 2])
    return COOMatrix((n, n), row, col, val)


class TestSymmetric:
    def test_roundtrip(self):
        coo = symmetric_coo(60, 0.08, seed=1)
        s = SymmetricCSRMatrix.from_coo(coo)
        np.testing.assert_allclose(s.toarray(), coo.toarray(), rtol=1e-12)

    def test_spmv(self, rng):
        coo = symmetric_coo(80, 0.05, seed=2)
        s = SymmetricCSRMatrix.from_coo(coo)
        x = rng.standard_normal(80)
        np.testing.assert_allclose(s.spmv(x), coo.toarray() @ x,
                                   rtol=1e-10, atol=1e-12)

    def test_diagonal_not_doubled(self, rng):
        coo = COOMatrix((3, 3), [0, 1, 2], [0, 1, 2], [2.0, 3.0, 4.0])
        s = SymmetricCSRMatrix.from_coo(coo)
        np.testing.assert_allclose(
            s.spmv(np.ones(3)), [2.0, 3.0, 4.0]
        )

    def test_footprint_nearly_halved(self):
        coo = symmetric_coo(200, 0.05, seed=3)
        s = SymmetricCSRMatrix.from_coo(coo)
        full = coo_to_csr(coo)
        assert s.footprint_bytes() < 0.62 * full.footprint_bytes()

    def test_nnz_logical_counts_both_triangles(self):
        coo = symmetric_coo(100, 0.05, seed=4)
        s = SymmetricCSRMatrix.from_coo(coo)
        assert s.nnz_logical == coo.nnz_logical
        assert s.nnz_stored < coo.nnz_logical

    def test_rejects_asymmetric(self):
        a = COOMatrix((3, 3), [0], [1], [1.0])
        with pytest.raises(MatrixFormatError):
            SymmetricCSRMatrix.from_coo(a)

    def test_rejects_rectangular(self):
        a = COOMatrix((3, 4), [0], [1], [1.0])
        with pytest.raises(MatrixFormatError):
            SymmetricCSRMatrix.from_coo(a)

    def test_rejects_upper_triangle_storage(self):
        with pytest.raises(MatrixFormatError):
            SymmetricCSRMatrix(2, [0, 1, 1], [1], [1.0])

    def test_accumulates(self, rng):
        coo = symmetric_coo(40, 0.1, seed=5)
        s = SymmetricCSRMatrix.from_coo(coo)
        x = rng.standard_normal(40)
        y0 = rng.standard_normal(40)
        np.testing.assert_allclose(
            s.spmv(x, y0.copy()), y0 + coo.toarray() @ x,
            rtol=1e-9, atol=1e-9,
        )


class TestSpMM:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_csr(self, rng, k):
        coo = random_coo(50, 40, 0.1, seed=6)
        csr = coo_to_csr(coo)
        x = rng.standard_normal((40, k))
        np.testing.assert_allclose(spmm(csr, x), coo.toarray() @ x,
                                   rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("k", [1, 3])
    def test_bcsr(self, rng, k):
        coo = random_coo(48, 48, 0.1, seed=7)
        b = to_bcsr(coo, 2, 2)
        x = rng.standard_normal((48, k))
        np.testing.assert_allclose(spmm(b, x), coo.toarray() @ x,
                                   rtol=1e-10, atol=1e-12)

    def test_cache_blocked(self, rng):
        coo = random_coo(90, 70, 0.08, seed=8)
        cb = to_cache_blocked(coo, uniform_block_specs((90, 70), 30, 35))
        x = rng.standard_normal((70, 4))
        np.testing.assert_allclose(spmm(cb, x), coo.toarray() @ x,
                                   rtol=1e-10, atol=1e-12)

    def test_coo(self, rng):
        coo = random_coo(30, 30, 0.2, seed=9)
        x = rng.standard_normal((30, 3))
        np.testing.assert_allclose(spmm(coo, x), coo.toarray() @ x,
                                   rtol=1e-10, atol=1e-12)

    def test_accumulates(self, rng):
        coo = random_coo(20, 20, 0.2, seed=10)
        csr = coo_to_csr(coo)
        x = rng.standard_normal((20, 2))
        y0 = rng.standard_normal((20, 2))
        np.testing.assert_allclose(
            spmm(csr, x, y0.copy()), y0 + coo.toarray() @ x,
            rtol=1e-9, atol=1e-9,
        )

    def test_bad_shapes(self, rng):
        coo = random_coo(10, 10, 0.2, seed=11)
        csr = coo_to_csr(coo)
        with pytest.raises(MatrixFormatError):
            spmm(csr, np.ones((11, 2)))
        with pytest.raises(MatrixFormatError):
            spmm(csr, np.ones((10, 2)), np.ones((10, 3)))

    def test_intensity_gain_grows_with_k(self):
        coo = random_coo(500, 500, 0.01, seed=12)
        csr = coo_to_csr(coo)
        g1 = spmm_intensity_gain(csr, 1)
        g4 = spmm_intensity_gain(csr, 4)
        g16 = spmm_intensity_gain(csr, 16)
        assert g1 == pytest.approx(1.0)
        assert 1.0 < g4 < g16

    def test_intensity_gain_bad_k(self):
        coo = random_coo(10, 10, 0.2, seed=13)
        with pytest.raises(MatrixFormatError):
            spmm_intensity_gain(coo_to_csr(coo), 0)
