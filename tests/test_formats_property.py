"""Property-based tests (hypothesis) on formats and kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    COOMatrix,
    coo_to_csr,
    to_bcoo,
    to_bcsr,
    to_cache_blocked,
    to_gcsr,
)
from repro.formats.convert import uniform_block_specs
from repro.formats.footprint import naive_footprint_bytes


@st.composite
def coo_matrices(draw, max_dim=80, max_nnz=200):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, m * n)))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    if nnz:
        key = np.unique(rng.integers(0, m * n, nnz))
        rows, cols = key // n, key % n
        vals = rng.standard_normal(len(rows))
        # Avoid exact zeros so nnz bookkeeping is unambiguous.
        vals[vals == 0.0] = 1.0
    else:
        rows = cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)
    return COOMatrix((m, n), rows, cols, vals, dedupe=False)


CONVERTERS = [
    ("csr", lambda c: coo_to_csr(c)),
    ("gcsr", lambda c: to_gcsr(c)),
    ("bcsr22", lambda c: to_bcsr(c, 2, 2)),
    ("bcsr41", lambda c: to_bcsr(c, 4, 1)),
    ("bcoo22", lambda c: to_bcoo(c, 2, 2)),
    ("bcoo14", lambda c: to_bcoo(c, 1, 4)),
]


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    def test_all_formats_roundtrip(self, coo):
        dense = coo.toarray()
        for name, conv in CONVERTERS:
            mat = conv(coo)
            np.testing.assert_allclose(mat.toarray(), dense,
                                       rtol=1e-12, err_msg=name)

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices(), seed=st.integers(0, 2**31))
    def test_all_formats_spmv_agree(self, coo, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(coo.ncols)
        expected = coo.toarray() @ x
        for name, conv in CONVERTERS:
            got = conv(coo).spmv(x)
            np.testing.assert_allclose(got, expected, rtol=1e-9,
                                       atol=1e-9, err_msg=name)


class TestLinearity:
    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(), seed=st.integers(0, 2**31),
           alpha=st.floats(-10, 10, allow_nan=False))
    def test_spmv_linear(self, coo, seed, alpha):
        rng = np.random.default_rng(seed)
        csr = coo_to_csr(coo)
        x1 = rng.standard_normal(coo.ncols)
        x2 = rng.standard_normal(coo.ncols)
        lhs = csr.spmv(x1 + alpha * x2)
        rhs = csr.spmv(x1) + alpha * csr.spmv(x2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(), seed=st.integers(0, 2**31))
    def test_accumulation_property(self, coo, seed):
        rng = np.random.default_rng(seed)
        csr = coo_to_csr(coo)
        x = rng.standard_normal(coo.ncols)
        y0 = rng.standard_normal(coo.nrows)
        np.testing.assert_allclose(
            csr.spmv(x, y0.copy()), y0 + csr.spmv(x),
            rtol=1e-9, atol=1e-9,
        )


class TestFootprintInvariants:
    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    def test_value_bytes_floor(self, coo):
        """Every format stores at least 8 bytes per logical nonzero."""
        for name, conv in CONVERTERS:
            mat = conv(coo)
            assert mat.footprint_bytes() >= 8 * coo.nnz_logical, name

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    def test_stored_at_least_logical(self, coo):
        for name, conv in CONVERTERS:
            mat = conv(coo)
            assert mat.nnz_stored >= mat.nnz_logical, name
            assert mat.nnz_logical == coo.nnz_logical, name

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices())
    def test_heuristic_never_beats_naive_by_magic(self, coo):
        """The footprint heuristic's choice is bounded below by the
        8-bytes-per-value floor and above by ~the naive encoding plus
        pointer overhead."""
        if coo.nnz_logical == 0:
            return
        from repro.core.heuristics import choose_block_format

        choice = choose_block_format(coo)
        assert choice.footprint >= 8 * coo.nnz_logical
        naive = naive_footprint_bytes(coo.nnz_logical)
        ptr_overhead = 4 * (coo.nrows + 2)
        assert choice.footprint <= naive + ptr_overhead


class TestCacheBlockedProperty:
    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(), br=st.integers(4, 40),
           bc=st.integers(4, 40), seed=st.integers(0, 2**31))
    def test_any_uniform_blocking_preserves_spmv(self, coo, br, bc, seed):
        rng = np.random.default_rng(seed)
        cb = to_cache_blocked(coo, uniform_block_specs(coo.shape, br, bc))
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_allclose(
            cb.spmv(x), coo.toarray() @ x, rtol=1e-9, atol=1e-9
        )
        assert cb.nnz_logical == coo.nnz_logical


class TestPartitionProperty:
    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(max_dim=120), parts=st.integers(1, 8))
    def test_balanced_partition_invariants(self, coo, parts):
        from repro.parallel import partition_rows_balanced

        parts = min(parts, max(coo.nrows, 1))
        p = partition_rows_balanced(coo, parts)
        assert p.bounds[0] == 0 and p.bounds[-1] == coo.nrows
        assert (np.diff(p.bounds) >= 0).all()
        assert p.nnz_per_part.sum() == coo.nnz_logical
        assert (p.nnz_per_part >= 0).all()
