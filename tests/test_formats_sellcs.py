"""Unit tests for the SELL-C-σ format (sliced ELL with σ-window sort).

The correctness bar is strict: the numpy reference accumulates each
row's elements in column order, seeded from the gathered destination,
so ``spmv`` must be *bit-identical* to the per-entry CSR reference
under the permutation round-trip — not merely allclose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexWidthError, MatrixFormatError
from repro.formats import COOMatrix, IndexWidth, SellCSMatrix, to_sellcs
from repro.formats.sellcs import normalize_sigma, sellcs_stats
from repro.kernels.reference import spmv_reference


def _random_coo(rng, m, n, nnz):
    return COOMatrix(
        (m, n),
        rng.integers(0, max(m, 1), nnz),
        rng.integers(0, max(n, 1), nnz),
        rng.standard_normal(nnz),
    )


class TestConstruction:
    def test_roundtrip_dense(self, rng):
        coo = _random_coo(rng, 37, 23, 150)
        s = to_sellcs(coo, chunk=8, sigma=16)
        np.testing.assert_array_equal(s.toarray(), coo.toarray())

    def test_rows_padded_to_chunk(self, rng):
        coo = _random_coo(rng, 13, 13, 60)
        s = to_sellcs(coo, chunk=8)
        assert s.n_slices == 2                  # ceil(13 / 8)
        assert s.slice_ptr[-1] == s.cols.size
        assert s.nnz_logical == coo.nnz_logical
        assert s.nnz_stored >= s.nnz_logical

    def test_sigma_window_reduces_fill(self, rng):
        # One long row per 64-row window: a full-matrix sort packs the
        # long rows together, windowed sorting cannot — so the global
        # sort (sigma >= m) never stores more than the windowed one.
        rows = []
        for w in range(4):
            rows.extend([w * 64] * 50)
            rows.extend(range(w * 64, (w + 1) * 64))
        rows = np.array(rows)
        cols = np.arange(rows.size) % 256
        coo = COOMatrix((256, 256), rows, cols,
                        np.ones(rows.size), dedupe=True)
        _, stored_global = sellcs_stats(np.bincount(coo.row,
                                                    minlength=256),
                                        chunk=8, sigma=256)
        _, stored_window = sellcs_stats(np.bincount(coo.row,
                                                    minlength=256),
                                        chunk=8, sigma=8)
        assert stored_global <= stored_window

    def test_normalize_sigma(self):
        assert normalize_sigma(8, None) == 128       # chunk * 16
        assert normalize_sigma(8, 20) == 16          # floor to multiple
        assert normalize_sigma(8, 3) == 8            # at least one chunk
        assert normalize_sigma(4, 1000) == 1000

    def test_invalid_chunk_refused(self, rng):
        coo = _random_coo(rng, 8, 8, 10)
        with pytest.raises(MatrixFormatError):
            to_sellcs(coo, chunk=0)


class TestEdgeCases:
    def test_empty_matrix(self):
        s = to_sellcs(COOMatrix.empty((0, 0)))
        assert s.n_slices == 0 and s.nnz_stored == 0
        assert s.spmv(np.zeros(0), np.zeros(0)).shape == (0,)

    def test_all_empty_rows(self):
        # Nonzero shape, zero entries: every slice is width 0.
        s = to_sellcs(COOMatrix.empty((20, 10)), chunk=8)
        assert s.nnz_stored == 0
        y = s.spmv(np.ones(10), np.full(20, 3.0))
        np.testing.assert_array_equal(y, np.full(20, 3.0))

    def test_single_row(self, rng):
        coo = _random_coo(rng, 1, 40, 25)
        s = to_sellcs(coo, chunk=8)
        assert s.n_slices == 1
        x = rng.standard_normal(40)
        ref = spmv_reference(coo, x, np.zeros(1))
        np.testing.assert_array_equal(s.spmv(x, np.zeros(1)), ref)

    def test_sigma_larger_than_m(self, rng):
        coo = _random_coo(rng, 10, 10, 30)
        s = to_sellcs(coo, chunk=4, sigma=10_000)
        x = rng.standard_normal(10)
        ref = spmv_reference(coo, x, np.zeros(10))
        np.testing.assert_array_equal(s.spmv(x, np.zeros(10)), ref)

    def test_i16_overflow_refused(self):
        coo = COOMatrix((2, 70_000), [0, 1], [0, 69_999], [1.0, 2.0])
        with pytest.raises(IndexWidthError):
            to_sellcs(coo, index_width=IndexWidth.I16)
        # Auto width picks I32 for the same matrix.
        assert to_sellcs(coo).index_width == IndexWidth.I32


class TestBitIdentity:
    @pytest.mark.parametrize("chunk,sigma", [(4, 4), (8, 16), (8, None),
                                             (16, 64)])
    def test_permutation_round_trip_bit_identical(self, rng, chunk,
                                                  sigma):
        # Highly skewed row lengths force a non-trivial permutation.
        m, n = 97, 61
        counts = rng.integers(0, 20, m) ** 2 // 20
        rows = np.repeat(np.arange(m), counts)
        cols = rng.integers(0, n, rows.size)
        coo = COOMatrix((m, n), rows, cols,
                        rng.standard_normal(rows.size), dedupe=True)
        s = to_sellcs(coo, chunk=chunk, sigma=sigma)
        assert not np.array_equal(s.perm, np.arange(m)) or m < 2
        x = rng.standard_normal(n)
        y0 = rng.standard_normal(m)        # nonzero initial destination
        ref = spmv_reference(coo, x, y0.copy())
        got = s.spmv(x, y0.copy())
        assert np.array_equal(got, ref)    # bit-identical, not allclose

    def test_spmm_matches_columnwise_spmv(self, rng):
        from repro.formats.multivector import spmm

        coo = _random_coo(rng, 50, 30, 200)
        s = to_sellcs(coo, chunk=8, sigma=16)
        x = rng.standard_normal((30, 4))
        y = spmm(s, x, np.zeros((50, 4)))
        for j in range(4):
            ref = s.spmv(x[:, j], np.zeros(50))
            np.testing.assert_array_equal(y[:, j], ref)


class TestFootprint:
    def test_footprint_matches_estimate(self, rng):
        coo = _random_coo(rng, 64, 64, 400)
        s = to_sellcs(coo, chunk=8, sigma=32)
        counts = np.bincount(coo.row, minlength=64)
        n_slices, stored = sellcs_stats(counts, chunk=8, sigma=32)
        est = SellCSMatrix.estimate_footprint(
            stored, n_slices, 64, s.index_width,
        )
        assert s.footprint_bytes() == est
