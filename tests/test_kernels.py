"""Kernel registry and generated-kernel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats import coo_to_csr, to_bcoo, to_bcsr
from repro.kernels import (
    available_kernels,
    generate_kernel_source,
    get_kernel,
    register_kernel,
)
from repro.kernels.generator import get_generated_kernel, spmv_generated
from repro.kernels.reference import spmv_dense_reference, spmv_reference
from tests.conftest import random_coo


class TestReference:
    def test_loop_matches_dense(self, rng):
        coo = random_coo(30, 25, 0.1, seed=1)
        x = rng.standard_normal(25)
        np.testing.assert_allclose(
            spmv_reference(coo, x), spmv_dense_reference(coo, x),
            rtol=1e-12,
        )

    def test_shape_check(self, rng):
        coo = random_coo(10, 10, 0.1, seed=2)
        with pytest.raises(ValueError):
            spmv_reference(coo, np.ones(11))


class TestGenerator:
    @pytest.mark.parametrize("fmt", ["bcsr", "bcoo"])
    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (4, 4), (1, 4), (4, 1)])
    def test_generated_matches_native(self, rng, fmt, r, c):
        coo = random_coo(64, 48, 0.08, seed=r * 10 + c)
        mat = to_bcsr(coo, r, c) if fmt == "bcsr" else to_bcoo(coo, r, c)
        x = rng.standard_normal(48)
        np.testing.assert_allclose(
            spmv_generated(mat, x), mat.spmv(x), rtol=1e-12
        )

    def test_source_is_unrolled(self):
        src = generate_kernel_source("bcsr", 4, 2)
        # Four explicit tile-row lines, each with two product terms.
        assert src.count("contrib[:, ") == 4
        assert "blocks[:, 3, 1]" in src
        assert "einsum" not in src

    def test_kernel_cached(self):
        a = get_generated_kernel("bcsr", 2, 2)
        b = get_generated_kernel("bcsr", 2, 2)
        assert a is b

    def test_bad_format(self):
        with pytest.raises(KernelError):
            generate_kernel_source("csr", 1, 1)

    def test_bad_shape(self):
        with pytest.raises(KernelError):
            generate_kernel_source("bcsr", 0, 2)

    def test_generated_rejects_other_formats(self, rng):
        coo = random_coo(10, 10, 0.2, seed=3)
        with pytest.raises(KernelError):
            spmv_generated(coo_to_csr(coo), np.ones(10))

    def test_accumulates(self, rng):
        coo = random_coo(32, 32, 0.1, seed=4)
        mat = to_bcsr(coo, 2, 2)
        x = rng.standard_normal(32)
        y0 = rng.standard_normal(32)
        got = spmv_generated(mat, x, y0.copy())
        np.testing.assert_allclose(got, y0 + coo.toarray() @ x, rtol=1e-12)


class TestRegistry:
    def test_builtins_present(self):
        names = available_kernels()
        for k in ["format_native", "generated_unrolled", "reference",
                  "segmented_scan"]:
            assert k in names

    def test_dispatch(self, rng):
        coo = random_coo(20, 20, 0.2, seed=5)
        csr = coo_to_csr(coo)
        x = rng.standard_normal(20)
        expected = coo.toarray() @ x
        for name in ["format_native", "reference", "segmented_scan"]:
            np.testing.assert_allclose(
                get_kernel(name)(csr, x), expected, rtol=1e-12
            )

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            get_kernel("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KernelError):
            register_kernel("format_native", lambda m, x, y=None: x)

    def test_decorator_form(self):
        @register_kernel("test_only_kernel")
        def k(matrix, x, y=None):
            return matrix.spmv(x, y)

        assert get_kernel("test_only_kernel") is k
