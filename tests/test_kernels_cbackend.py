"""Runtime-compiled C backend: parity sweep, fallback, integration."""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats import COOMatrix, IndexWidth, coo_to_csr, to_bcoo, to_bcsr
from repro.kernels import (
    BACKENDS,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_backend,
    spmm_backend,
    spmv_backend,
)
from repro.kernels.cbackend import (
    CBackendUnavailable,
    Variant,
    c_backend_available,
    c_kernel_source,
    get_c_kernel,
    reset_for_tests,
    spmm_c,
    spmv_c,
)
from repro.kernels.reference import spmv_reference
from tests.conftest import random_coo

needs_cc = pytest.mark.skipif(
    not c_backend_available(),
    reason="C backend unavailable (no compiler or REPRO_DISABLE_CC)",
)

PARITY_RTOL = 1e-12


def _coo_with_empty_rows(seed: int) -> COOMatrix:
    """Random matrix with guaranteed empty rows and a dense-ish row."""
    rng = np.random.default_rng(seed)
    m, n = 41, 37
    nnz = 180
    row = rng.integers(0, m, size=nnz)
    row[(row == 7) | (row == 8)] = 9        # rows 7 and 8 stay empty
    col = rng.integers(0, n, size=nnz)
    val = rng.standard_normal(nnz)
    return COOMatrix((m, n), row, col, val)


def _assert_parity(got: np.ndarray, expected: np.ndarray) -> None:
    bound = PARITY_RTOL * np.maximum(np.abs(expected), 1.0)
    assert np.all(np.abs(got - expected) <= bound)


# ----------------------------------------------------------------------
# Parity sweep (the issue's acceptance matrix)
# ----------------------------------------------------------------------
@needs_cc
class TestParitySweep:
    @pytest.mark.parametrize("index_width",
                             [IndexWidth.I16, IndexWidth.I32])
    def test_csr(self, index_width):
        coo = _coo_with_empty_rows(3)
        csr = coo_to_csr(coo, index_width=index_width)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(coo.ncols)
        y0 = rng.standard_normal(coo.nrows)
        _assert_parity(spmv_c(csr, x, y0.copy()),
                       spmv_reference(coo, x, y0.copy()))

    @pytest.mark.parametrize("fmt", ["bcsr", "bcoo"])
    @pytest.mark.parametrize("index_width",
                             [IndexWidth.I16, IndexWidth.I32])
    @pytest.mark.parametrize("r", [1, 2, 3, 4])
    @pytest.mark.parametrize("c", [1, 2, 3, 4])
    def test_blocked(self, fmt, r, c, index_width):
        coo = _coo_with_empty_rows(r * 16 + c)
        conv = to_bcsr if fmt == "bcsr" else to_bcoo
        mat = conv(coo, r, c, index_width=index_width)
        rng = np.random.default_rng(r * 4 + c)
        x = rng.standard_normal(coo.ncols)
        y0 = rng.standard_normal(coo.nrows)
        _assert_parity(spmv_c(mat, x, y0.copy()),
                       spmv_reference(coo, x, y0.copy()))

    def test_zero_nnz(self):
        coo = COOMatrix((9, 7), np.array([], dtype=np.int64),
                        np.array([], dtype=np.int64),
                        np.array([], dtype=np.float64))
        csr = coo_to_csr(coo)
        y0 = np.random.default_rng(0).standard_normal(9)
        got = spmv_c(csr, np.ones(7), y0.copy())
        np.testing.assert_array_equal(got, y0)

    def test_spmm_matches_numpy_spmm(self):
        from repro.formats.multivector import spmm

        coo = _coo_with_empty_rows(11)
        csr = coo_to_csr(coo)
        rng = np.random.default_rng(12)
        x = rng.standard_normal((coo.ncols, 5))
        _assert_parity(spmm_c(csr, x), spmm(csr, x))

    def test_strided_y_view(self):
        """Writing into a non-contiguous destination must not corrupt
        neighbouring columns (the kernels need contiguous buffers)."""
        coo = _coo_with_empty_rows(13)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(14).standard_normal(coo.ncols)
        block = np.zeros((coo.nrows, 3))
        spmv_c(csr, x, block[:, 1])
        _assert_parity(block[:, 1], spmv_reference(coo, x))
        assert not block[:, 0].any() and not block[:, 2].any()

    def test_cache_blocked_dispatch(self):
        from repro.core import SpmvEngine
        from repro.machines import get_machine

        coo = random_coo(300, 300, 0.03, seed=17)
        tuned = SpmvEngine(get_machine("AMD X2")).tune(coo)
        x = np.random.default_rng(18).standard_normal(coo.ncols)
        _assert_parity(spmv_c(tuned.matrix, x), spmv_reference(coo, x))


# ----------------------------------------------------------------------
# Build pipeline and load-time validation
# ----------------------------------------------------------------------
class TestBuildPipeline:
    def test_source_is_specialized(self):
        src = c_kernel_source(Variant("bcsr", 2, 3, IndexWidth.I16))
        assert "uint16_t" in src
        assert "b[5] * xs[2]" in src           # last MAC of a 2x3 tile
        assert "for" not in src.split("t < hi")[1].split("}")[0]

    def test_csr_variant_rejects_tiles(self):
        with pytest.raises(KernelError):
            Variant("csr", 2, 2, IndexWidth.I32)

    def test_unknown_format_rejected(self):
        with pytest.raises(KernelError):
            Variant("gcsr", 1, 1, IndexWidth.I32)

    @needs_cc
    def test_object_cached_on_disk(self):
        import os

        from repro.kernels.cbackend import object_path

        get_c_kernel("csr", 1, 1, IndexWidth.I32)
        assert os.path.exists(
            object_path(Variant("csr", 1, 1, IndexWidth.I32))
        )

    @needs_cc
    def test_kernel_cached_in_process(self):
        k1 = get_c_kernel("csr", 1, 1, IndexWidth.I32)
        k2 = get_c_kernel("csr", 1, 1, IndexWidth.I32)
        assert k1 is k2


# ----------------------------------------------------------------------
# Fallback semantics with the compiler disabled
# ----------------------------------------------------------------------
class TestDisabledFallback:
    @pytest.fixture(autouse=True)
    def _disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CC", "1")
        reset_for_tests()
        yield
        monkeypatch.delenv("REPRO_DISABLE_CC", raising=False)
        reset_for_tests()

    def test_unavailable(self):
        assert not c_backend_available()

    def test_spmv_c_raises(self):
        csr = coo_to_csr(random_coo(10, 10, 0.2, seed=1))
        with pytest.raises(CBackendUnavailable):
            spmv_c(csr, np.ones(10))

    def test_resolve_auto_degrades(self):
        assert resolve_backend("auto") == "numpy"

    def test_resolve_c_raises(self):
        with pytest.raises(CBackendUnavailable):
            resolve_backend("c")

    def test_auto_backend_is_bitwise_numpy(self):
        coo = random_coo(50, 50, 0.1, seed=2)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(3).standard_normal(50)
        np.testing.assert_array_equal(
            spmv_backend(csr, x, backend="auto"), csr.spmv(x)
        )

    def test_threaded_spmv_degrades_serial(self):
        from repro.parallel import threaded_spmv

        coo = random_coo(60, 60, 0.1, seed=4)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(5).standard_normal(60)
        np.testing.assert_array_equal(
            threaded_spmv(csr, x, n_threads=4, min_nnz_per_thread=1),
            csr.spmv(x),
        )


# ----------------------------------------------------------------------
# Backend selection layer
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_backends_tuple(self):
        assert BACKENDS == ("numpy", "c", "auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError):
            resolve_backend("fortran")

    def test_numpy_backend_is_bitwise(self):
        coo = random_coo(40, 40, 0.1, seed=6)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(7).standard_normal(40)
        np.testing.assert_array_equal(
            spmv_backend(csr, x, backend="numpy"), csr.spmv(x)
        )

    @needs_cc
    def test_c_backend_parity(self):
        coo = random_coo(40, 40, 0.1, seed=8)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(9).standard_normal(40)
        _assert_parity(spmv_backend(csr, x, backend="c"),
                       spmv_reference(coo, x))

    @needs_cc
    def test_spmm_backend_parity(self):
        from repro.formats.multivector import spmm

        coo = random_coo(40, 40, 0.1, seed=10)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(11).standard_normal((40, 3))
        _assert_parity(spmm_backend(csr, x, backend="c"), spmm(csr, x))


# ----------------------------------------------------------------------
# Plan / engine integration
# ----------------------------------------------------------------------
class TestPlanBackend:
    def test_default_backend_numpy(self):
        from repro.core import SpmvEngine
        from repro.machines import get_machine

        coo = random_coo(50, 50, 0.1, seed=12)
        plan = SpmvEngine(get_machine("AMD X2")).plan(coo)
        assert plan.backend == "numpy"

    def test_roundtrip_preserves_backend(self):
        from repro.core import SpmvEngine
        from repro.core.plan import SpmvPlan
        from repro.machines import get_machine

        coo = random_coo(50, 50, 0.1, seed=13)
        plan = SpmvEngine(get_machine("AMD X2")).plan(coo)
        d = plan.to_dict()
        assert d["backend"] == "numpy"
        assert SpmvPlan.from_dict(d).backend == "numpy"
        d.pop("backend")                 # pre-backend serialized plans
        assert SpmvPlan.from_dict(d).backend == "numpy"

    @needs_cc
    def test_tuned_c_backend_executes(self):
        from repro.core import SpmvEngine
        from repro.machines import get_machine

        coo = random_coo(80, 80, 0.1, seed=14)
        tuned = SpmvEngine(get_machine("AMD X2")).tune(coo, backend="c")
        assert tuned.plan.backend == "c"
        x = np.random.default_rng(15).standard_normal(80)
        _assert_parity(tuned(x), spmv_reference(coo, x))


# ----------------------------------------------------------------------
# Threaded execution path
# ----------------------------------------------------------------------
@needs_cc
class TestThreaded:
    def test_spmv_parity(self):
        from repro.parallel import threaded_spmv

        coo = random_coo(120, 90, 0.1, seed=16)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(17).standard_normal(90)
        got = threaded_spmv(csr, x, n_threads=4, min_nnz_per_thread=1)
        _assert_parity(got, spmv_reference(coo, x))

    def test_spmm_parity(self):
        from repro.formats.multivector import spmm
        from repro.parallel import threaded_spmm

        coo = random_coo(120, 90, 0.1, seed=18)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(19).standard_normal((90, 4))
        got = threaded_spmm(csr, x, n_threads=3, min_nnz_per_thread=1)
        _assert_parity(got, spmm(csr, x))

    def test_partition_mismatch_rejected(self):
        from repro.errors import PartitionError
        from repro.parallel import threaded_spmv
        from repro.parallel.partition import partition_rows_balanced

        coo = random_coo(100, 100, 0.1, seed=20)
        csr = coo_to_csr(coo)
        part = partition_rows_balanced(coo, 2)
        with pytest.raises(PartitionError):
            threaded_spmv(csr, np.ones(100), n_threads=3,
                          partition=part, min_nnz_per_thread=1)


# ----------------------------------------------------------------------
# Satellite: deprecated "format_native" alias
# ----------------------------------------------------------------------
class TestDeprecatedAlias:
    def test_new_name_registered(self):
        names = available_kernels()
        assert "format_numpy" in names
        assert "format_native" in names      # alias stays listed

    def test_alias_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="format_numpy"):
            fn = get_kernel("format_native")
        assert fn is get_kernel("format_numpy")

    def test_new_name_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            get_kernel("format_numpy")

    def test_alias_name_cannot_be_reused(self):
        with pytest.raises(KernelError):
            register_kernel("format_native", lambda m, x, y=None: x)

    @needs_cc
    def test_format_c_kernel_registered(self):
        coo = random_coo(30, 30, 0.1, seed=21)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(22).standard_normal(30)
        _assert_parity(get_kernel("format_c")(csr, x),
                       spmv_reference(coo, x))


# ----------------------------------------------------------------------
# Satellite: generator cache thread-safety regression
# ----------------------------------------------------------------------
class TestGeneratorCacheThreadSafety:
    def test_concurrent_compile_and_insert(self):
        from repro.kernels import generator

        with generator._CACHE_LOCK:
            generator._CACHE.clear()
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        results: list = [None] * n_threads
        errors: list = []

        def worker(i: int) -> None:
            try:
                barrier.wait()
                # Every thread races the same small variant set, so the
                # unlocked check-compile-insert would interleave.
                results[i] = generator.get_generated_kernel(
                    "bcsr", 1 + i % 2, 1 + i % 3
                )
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(n_threads):
            assert results[i] is generator.get_generated_kernel(
                "bcsr", 1 + i % 2, 1 + i % 3
            )
