"""Machine model invariants: every Table 1 number must be derivable."""

from __future__ import annotations

import pytest

from repro.errors import MachineModelError
from repro.machines import (
    CacheLevel,
    CoreArch,
    Machine,
    MemorySystem,
    TLBConfig,
    all_machines,
    amd_x2,
    cell_blade,
    cell_ps3,
    clovertown,
    get_machine,
    machine_names,
    niagara,
)


class TestTable1:
    """Derived properties must reproduce Table 1's rows."""

    def test_peak_gflops(self):
        assert amd_x2.peak_dp_gflops == pytest.approx(17.6, rel=0.01)
        assert clovertown.peak_dp_gflops == pytest.approx(74.7, rel=0.01)
        assert niagara.peak_dp_gflops == pytest.approx(8.0, rel=0.01)
        assert cell_ps3.peak_dp_gflops == pytest.approx(11.0, rel=0.02)
        assert cell_blade.peak_dp_gflops == pytest.approx(29.2, rel=0.02)

    def test_dram_bandwidth(self):
        assert amd_x2.peak_bw / 1e9 == pytest.approx(21.3, rel=0.01)
        assert niagara.peak_bw / 1e9 == pytest.approx(25.6, rel=0.01)
        assert cell_ps3.peak_bw / 1e9 == pytest.approx(25.6, rel=0.01)
        assert cell_blade.peak_bw / 1e9 == pytest.approx(51.2, rel=0.01)

    def test_flop_byte_ratios(self):
        # Table 1: AMD 0.83, Clovertown 3.52 (vs 21.3 GB/s DRAM pool),
        # Niagara 0.31, PS3 0.43, Blade 0.57.
        assert amd_x2.flop_byte_ratio == pytest.approx(0.83, abs=0.03)
        assert niagara.flop_byte_ratio == pytest.approx(0.31, abs=0.02)
        assert cell_ps3.flop_byte_ratio == pytest.approx(0.43, abs=0.02)
        assert cell_blade.flop_byte_ratio == pytest.approx(0.57, abs=0.02)

    def test_clovertown_flop_byte_vs_chipset(self):
        # Our model treats the per-socket FSB as the binding resource;
        # against the chipset's 21.3 GB/s the ratio is the paper's 3.52.
        chipset_bw = 21.3e9
        ratio = clovertown.peak_dp_gflops * 1e9 / chipset_bw
        assert ratio == pytest.approx(3.52, abs=0.05)

    def test_core_counts(self):
        assert amd_x2.n_cores == 4
        assert clovertown.n_cores == 8
        assert niagara.n_cores == 8 and niagara.n_threads == 32
        assert cell_ps3.n_cores == 6
        assert cell_blade.n_cores == 16

    def test_llc_totals(self):
        assert amd_x2.total_llc_bytes == 4 * 2**20       # 1MB x 4 cores
        assert clovertown.total_llc_bytes == 16 * 2**20  # 4MB x 4 dies
        assert niagara.total_llc_bytes == 3 * 2**20
        assert cell_ps3.total_llc_bytes == 0

    def test_power(self):
        assert amd_x2.watts_system == 275
        assert clovertown.watts_system == 333
        assert niagara.watts_system == 267
        assert cell_ps3.watts_system == 200
        assert cell_blade.watts_system == 315

    def test_describe_keys(self):
        row = amd_x2.describe()
        assert row["name"] == "AMD X2"
        assert row["dp_gflops_system"] == pytest.approx(17.6, rel=0.01)


class TestRegistry:
    def test_five_machines(self):
        assert len(all_machines()) == 5
        assert machine_names() == [
            "AMD X2", "Clovertown", "Niagara", "Cell (PS3)", "Cell Blade"
        ]

    def test_lookup(self):
        assert get_machine("Niagara") is niagara

    def test_unknown(self):
        with pytest.raises(MachineModelError):
            get_machine("Itanium")


class TestValidation:
    def test_cache_size_line_mismatch(self):
        with pytest.raises(MachineModelError):
            CacheLevel("L1", 1000, 64, 2, 3.0)

    def test_cache_assoc_mismatch(self):
        with pytest.raises(MachineModelError):
            CacheLevel("L1", 64 * 1024, 64, 3, 3.0)

    def test_tlb_reach(self):
        t = TLBConfig(32, 4096, 25.0)
        assert t.reach_bytes == 128 * 1024

    def test_bad_tlb(self):
        with pytest.raises(MachineModelError):
            TLBConfig(0, 4096, 25.0)

    def test_core_validation(self):
        with pytest.raises(MachineModelError):
            CoreArch("bad", 0.0, 1, True, 1.0, 1, 1, 1.0, 1.0, 1.0)

    def test_memory_validation(self):
        with pytest.raises(MachineModelError):
            MemorySystem("X", 1e9, 1e-7, 1.5, 64, False)

    def test_machine_rejects_cache_and_local_store(self):
        with pytest.raises(MachineModelError):
            Machine(
                name="bad", sockets=1, cores_per_socket=1,
                core=niagara.core,
                cache_levels=(CacheLevel("L1", 8192, 16, 4, 3.0),),
                tlb=None, mem=niagara.mem, local_store_bytes=1024,
            )

    def test_machine_rejects_oversharing(self):
        with pytest.raises(MachineModelError):
            Machine(
                name="bad", sockets=1, cores_per_socket=2,
                core=niagara.core,
                cache_levels=(
                    CacheLevel("L2", 8192, 16, 4, 3.0, shared_by_cores=4),
                ),
                tlb=None, mem=niagara.mem,
            )

    def test_niagara_is_integer_proxy(self):
        assert niagara.core.flop_is_integer_proxy

    def test_cell_spe_dp_throughput(self):
        # 1.83 Gflop/s per SPE (Table 1).
        assert cell_ps3.core.peak_dp_gflops == pytest.approx(1.83, abs=0.01)
