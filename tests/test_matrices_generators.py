"""Unit tests for the synthetic matrix generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import (
    clustered_rows_matrix,
    dense_in_sparse,
    fem_blocked_matrix,
    lattice_qcd,
    markov_grid,
    power_law_graph,
    scattered_matrix,
    set_cover_lp,
)
from repro.matrices.stats import compute_stats


class TestDense:
    def test_full(self):
        m = dense_in_sparse(16)
        assert m.nnz_logical == 256
        assert (m.toarray() != 0).all()

    def test_deterministic(self):
        a = dense_in_sparse(8, seed=3)
        b = dense_in_sparse(8, seed=3)
        np.testing.assert_array_equal(a.val, b.val)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dense_in_sparse(-1)


class TestFEM:
    def test_dims_multiple_of_dof(self):
        m = fem_blocked_matrix(1000, dof=3, nnz_per_row=30)
        assert m.nrows % 3 == 0
        assert m.nrows >= 1000

    def test_nnz_per_row_close_to_target(self):
        m = fem_blocked_matrix(3000, dof=3, nnz_per_row=30, seed=1)
        avg = m.nnz_logical / m.nrows
        assert avg == pytest.approx(30, rel=0.15)

    def test_block_structure_present(self):
        m = fem_blocked_matrix(600, dof=3, nnz_per_row=27, seed=2)
        stats = compute_stats(m)
        # dof=3 doesn't align with the 2x2/4x4 power-of-two grid, but 2x2
        # fill should still beat what unstructured scatter would give.
        scattered = scattered_matrix(600, nnz_per_row=27, diag_frac=0,
                                     seed=2)
        s2 = compute_stats(scattered)
        assert stats.block_fill[(2, 2)] < s2.block_fill[(2, 2)]

    def test_banded(self):
        m = fem_blocked_matrix(3000, dof=2, nnz_per_row=20,
                               bandwidth_frac=0.02, seed=3)
        stats = compute_stats(m)
        assert stats.diag_spread < 0.1

    def test_bad_dof(self):
        with pytest.raises(ValueError):
            fem_blocked_matrix(100, dof=0, nnz_per_row=10)

    def test_clustered_rows(self):
        m = clustered_rows_matrix(500, nnz_per_row=24, run_len=6, seed=4)
        stats = compute_stats(m)
        # Contiguous runs make 1x4 blocking cheap (fill close to 1)...
        assert stats.block_fill[(1, 4)] < 1.5
        # ...much cheaper than 4x1 which crosses unrelated rows.
        assert stats.block_fill[(1, 4)] < stats.block_fill[(4, 1)]

    def test_clustered_bad_runlen(self):
        with pytest.raises(ValueError):
            clustered_rows_matrix(100, 10, run_len=0)


class TestStencil:
    def test_markov_grid_interior_degree(self):
        m = markov_grid(30, 30)
        counts = m.row_counts()
        # Interior rows: self + 3 neighbors.
        assert counts.max() == 4
        assert m.nnz_logical / m.nrows == pytest.approx(4.0, rel=0.05)

    def test_markov_grid_near_diagonal(self):
        m = markov_grid(40, 40)
        stats = compute_stats(m)
        assert stats.diag_spread < 0.02

    def test_markov_bad_dims(self):
        with pytest.raises(ValueError):
            markov_grid(0, 5)

    def test_qcd_row_count(self):
        m = lattice_qcd((2, 2, 2, 2), dof=12)
        assert m.nrows == 16 * 12

    def test_qcd_nnz_per_row(self):
        m = lattice_qcd((4, 4, 4, 4), dof=12)
        avg = m.nnz_logical / m.nrows
        # 12 + 6*3 + 2*4 = 38 (torus, no boundary loss); duplicates on a
        # tiny lattice can collapse a few entries.
        assert avg == pytest.approx(38.0, rel=0.05)

    def test_qcd_bad_fill(self):
        with pytest.raises(ValueError):
            lattice_qcd((2, 2, 2, 2), dof=4, neighbor_fill=9)


class TestGraph:
    def test_avg_degree(self):
        g = power_law_graph(20_000, avg_degree=4.0, seed=5)
        avg = g.nnz_logical / g.nrows
        assert avg == pytest.approx(4.0, rel=0.25)

    def test_heavy_tail(self):
        g = power_law_graph(20_000, avg_degree=4.0, seed=6)
        counts = g.row_counts()
        assert counts.max() > 10 * counts.mean()

    def test_diagonal_present(self):
        g = power_law_graph(500, avg_degree=3.0, seed=7)
        d = np.diag(g.toarray())
        assert (d != 0).all()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            power_law_graph(0, 3.0)
        with pytest.raises(ValueError):
            power_law_graph(10, -1.0)


class TestLP:
    def test_aspect_ratio(self):
        m = set_cover_lp(100, 20_000, nnz_per_col=8, seed=8)
        assert m.ncols / m.nrows == 200

    def test_nnz_target(self):
        # Small instances lose noticeably to duplicate collapse (the
        # full-scale matrix loses <1%); allow a wide band here.
        m = set_cover_lp(100, 20_000, nnz_per_col=8, seed=9)
        assert m.nnz_logical == pytest.approx(160_000, rel=0.35)

    def test_values_are_unit(self):
        m = set_cover_lp(50, 500, nnz_per_col=4, seed=10)
        assert set(np.unique(m.val)) <= {1.0}

    def test_row_skew(self):
        m = set_cover_lp(200, 50_000, nnz_per_col=10, seed=11)
        counts = m.row_counts()
        assert counts.max() > 3 * counts.mean()


class TestScattered:
    def test_diag_and_scatter(self):
        m = scattered_matrix(1000, nnz_per_row=6, diag_frac=0.16, seed=12)
        avg = m.nnz_logical / m.nrows
        assert avg == pytest.approx(6, rel=0.15)

    def test_no_block_structure(self):
        m = scattered_matrix(2000, nnz_per_row=20, diag_frac=0, seed=13)
        stats = compute_stats(m)
        # Random scatter pads badly: 2x2 fill ratio near (but capped by
        # chance adjacencies below) the worst case of 4.
        assert stats.block_fill[(2, 2)] > 2.5
