"""Matrix file I/O tests."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.matrices import (
    load_matrix,
    load_matrix_market,
    save_matrix,
    save_matrix_market,
)
from tests.conftest import random_coo


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        coo = random_coo(40, 30, 0.1, seed=1)
        path = tmp_path / "m.mtx"
        save_matrix_market(path, coo)
        back = load_matrix_market(path)
        np.testing.assert_allclose(back.toarray(), coo.toarray(),
                                   rtol=1e-12)

    def test_roundtrip_via_stream(self):
        coo = random_coo(10, 10, 0.3, seed=2)
        buf = io.StringIO()
        save_matrix_market(buf, coo)
        buf.seek(0)
        back = load_matrix_market(buf)
        np.testing.assert_allclose(back.toarray(), coo.toarray())

    def test_comment_written(self):
        coo = random_coo(4, 4, 0.5, seed=3)
        buf = io.StringIO()
        save_matrix_market(buf, coo, comment="hello\nworld")
        text = buf.getvalue()
        assert "% hello" in text and "% world" in text

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "2 1 5.0\n"
            "3 3 1.0\n"
        )
        m = load_matrix_market(io.StringIO(text))
        d = m.toarray()
        assert d[1, 0] == 5.0 and d[0, 1] == 5.0
        assert d[0, 0] == 2.0 and d[2, 2] == 1.0
        assert m.nnz_logical == 4

    def test_skew_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        m = load_matrix_market(io.StringIO(text))
        d = m.toarray()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern_field(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "2 3 2\n"
            "1 3\n"
            "2 1\n"
        )
        m = load_matrix_market(io.StringIO(text))
        assert m.toarray()[0, 2] == 1.0
        assert m.toarray()[1, 0] == 1.0

    def test_integer_field(self):
        text = (
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 1\n"
            "1 1 7\n"
        )
        m = load_matrix_market(io.StringIO(text))
        assert m.toarray()[0, 0] == 7.0

    def test_empty_matrix(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 0\n"
        m = load_matrix_market(io.StringIO(text))
        assert m.nnz_logical == 0

    def test_missing_header(self):
        with pytest.raises(IOFormatError):
            load_matrix_market(io.StringIO("2 2 1\n1 1 1.0\n"))

    def test_complex_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n"
        with pytest.raises(IOFormatError):
            load_matrix_market(io.StringIO(text))

    def test_array_format_rejected(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"
        with pytest.raises(IOFormatError):
            load_matrix_market(io.StringIO(text))

    def test_wrong_entry_count(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n"
            "1 1 1.0\n"
        )
        with pytest.raises(IOFormatError):
            load_matrix_market(io.StringIO(text))

    def test_bad_size_line(self):
        text = "%%MatrixMarket matrix coordinate real general\nnope\n"
        with pytest.raises(IOFormatError):
            load_matrix_market(io.StringIO(text))


class TestGzip:
    def test_mtx_gz_roundtrip(self, tmp_path):
        coo = random_coo(50, 40, 0.08, seed=9)
        path = tmp_path / "m.mtx.gz"
        save_matrix_market(path, coo)
        # Written file is a real gzip stream, not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        back = load_matrix_market(path)
        np.testing.assert_allclose(back.toarray(), coo.toarray(),
                                   rtol=1e-12)

    def test_load_externally_gzipped(self, tmp_path):
        import gzip

        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 1 3.0\n"
            "2 2 4.0\n"
        )
        path = tmp_path / "ext.mtx.gz"
        with gzip.open(path, "wt") as f:
            f.write(text)
        m = load_matrix_market(path)
        assert m.toarray()[0, 0] == 3.0 and m.toarray()[1, 1] == 4.0

    def test_gz_errors_still_typed(self, tmp_path):
        import gzip

        path = tmp_path / "bad.mtx.gz"
        with gzip.open(path, "wt") as f:
            f.write("2 2 1\n1 1 1.0\n")
        with pytest.raises(IOFormatError):
            load_matrix_market(path)


class TestBinary:
    def test_npz_roundtrip(self, tmp_path):
        coo = random_coo(100, 50, 0.05, seed=4)
        path = tmp_path / "m.npz"
        save_matrix(path, coo)
        back = load_matrix(path)
        np.testing.assert_allclose(back.toarray(), coo.toarray())
        assert back.shape == coo.shape

    def test_not_a_matrix_file(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(IOFormatError):
            load_matrix(path)
