"""RCM reordering tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.formats import COOMatrix
from repro.matrices.reorder import (
    bandwidth_of,
    permute,
    rcm_reorder,
    reverse_cuthill_mckee,
)
from tests.conftest import random_coo


def shuffled_band_matrix(n, half_band, seed):
    """A banded matrix whose rows/cols were randomly permuted — the
    classic RCM recovery case."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for d in range(-half_band, half_band + 1):
        i = np.arange(max(0, -d), min(n, n - d))
        rows.append(i)
        cols.append(i + d)
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    coo = COOMatrix((n, n), row, col,
                    rng.standard_normal(len(row)))
    perm = rng.permutation(n)
    return permute(coo, perm)


class TestRCM:
    def test_recovers_band(self):
        coo = shuffled_band_matrix(300, 3, seed=1)
        assert bandwidth_of(coo) > 50   # shuffling destroyed the band
        reordered, _ = rcm_reorder(coo)
        assert bandwidth_of(reordered) < 25

    def test_permutation_is_bijection(self):
        coo = random_coo(100, 100, 0.03, seed=2)
        perm = reverse_cuthill_mckee(coo)
        assert sorted(perm.tolist()) == list(range(100))

    def test_spectrum_preserved(self):
        coo = random_coo(40, 40, 0.1, seed=3)
        reordered, perm = rcm_reorder(coo)
        a = np.sort(np.abs(np.linalg.eigvals(coo.toarray())))
        b = np.sort(np.abs(np.linalg.eigvals(reordered.toarray())))
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-8)

    def test_spmv_consistency(self, rng):
        coo = random_coo(60, 60, 0.08, seed=4)
        reordered, perm = rcm_reorder(coo)
        x = rng.standard_normal(60)
        y_perm = reordered.spmv(x[perm])
        y = coo.spmv(x)
        np.testing.assert_allclose(y_perm, y[perm], rtol=1e-10)

    def test_handles_disconnected_components(self):
        # Two separate cliques + an isolated vertex.
        entries = [(i, j) for i in range(3) for j in range(3)] + \
                  [(i, j) for i in range(4, 7) for j in range(4, 7)]
        coo = COOMatrix((8, 8), [e[0] for e in entries],
                        [e[1] for e in entries],
                        np.ones(len(entries)))
        perm = reverse_cuthill_mckee(coo)
        assert sorted(perm.tolist()) == list(range(8))

    def test_empty_matrix(self):
        assert len(reverse_cuthill_mckee(COOMatrix.empty((5, 5)))) == 5
        assert bandwidth_of(COOMatrix.empty((5, 5))) == 0

    def test_rejects_rectangular(self):
        coo = COOMatrix((3, 4), [0], [0], [1.0])
        with pytest.raises(MatrixFormatError):
            reverse_cuthill_mckee(coo)

    def test_matches_scipy_quality(self):
        """Our RCM bandwidth within 2x of SciPy's (orderings differ,
        quality must be comparable)."""
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csgraph

        coo = shuffled_band_matrix(200, 4, seed=5)
        ours, _ = rcm_reorder(coo)
        s = sp.csr_matrix(
            (coo.val, (coo.row, coo.col)), shape=coo.shape
        )
        sperm = csgraph.reverse_cuthill_mckee(s, symmetric_mode=True)
        theirs = permute(coo, np.asarray(sperm, dtype=np.int64))
        assert bandwidth_of(ours) <= 2 * max(bandwidth_of(theirs), 1)

    def test_permute_rectangular(self, rng):
        coo = random_coo(10, 20, 0.2, seed=6)
        rp = rng.permutation(10)
        cp = rng.permutation(20)
        p = permute(coo, rp, cp)
        np.testing.assert_allclose(
            p.toarray(), coo.toarray()[np.ix_(rp, cp)]
        )

    def test_permute_length_check(self):
        coo = random_coo(10, 10, 0.2, seed=7)
        with pytest.raises(MatrixFormatError):
            permute(coo, np.arange(9))

    def test_reordering_improves_simulated_performance(self):
        """The point of the exercise: RCM shrinks the modeled working
        set on a shuffled banded matrix."""
        from repro.core import SpmvEngine
        from repro.machines import get_machine

        coo = shuffled_band_matrix(60_000, 6, seed=8)
        reordered, _ = rcm_reorder(coo)
        eng = SpmvEngine(get_machine("AMD X2"))
        before = eng.simulate(eng.plan(coo))
        after = eng.simulate(eng.plan(reordered))
        assert after.gflops > before.gflops
