"""Matrix structure statistics tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices.stats import (
    compute_stats,
    nnz_per_row_per_cache_block,
    spyplot_grid,
)
from tests.conftest import random_coo


class TestComputeStats:
    def test_basic_counts(self):
        coo = COOMatrix((4, 4), [0, 0, 2], [1, 3, 2], [1.0, 2.0, 3.0])
        s = compute_stats(coo)
        assert s.nnz == 3
        assert s.nnz_per_row_mean == pytest.approx(0.75)
        assert s.nnz_per_row_max == 2
        assert s.empty_rows == 2
        assert s.density == pytest.approx(3 / 16)

    def test_diagonal_concentration(self):
        diag = COOMatrix((100, 100), np.arange(100), np.arange(100),
                         np.ones(100))
        s = compute_stats(diag)
        assert s.diag_spread == pytest.approx(0.0)
        assert s.diag_concentration == 1.0

    def test_scatter_spread(self):
        coo = random_coo(200, 200, 0.05, seed=1)
        s = compute_stats(coo)
        assert 0.1 < s.diag_spread < 0.5

    def test_block_fill_bounds(self):
        coo = random_coo(64, 64, 0.05, seed=2)
        s = compute_stats(coo)
        for (r, c), fill in s.block_fill.items():
            assert 1.0 <= fill <= r * c

    def test_empty_matrix(self):
        s = compute_stats(COOMatrix.empty((5, 5)))
        assert s.nnz == 0
        assert s.block_fill[(2, 2)] == 1.0
        assert s.best_block() in s.block_fill

    def test_aspect_ratio(self):
        coo = COOMatrix((10, 1000), [0], [5], [1.0])
        assert compute_stats(coo).aspect_ratio == 100.0


class TestCacheBlockDensity:
    def test_dense_rows_stay_dense(self):
        # A banded matrix keeps its per-block inner-loop length.
        n = 1000
        rows = np.repeat(np.arange(n), 5)
        cols = (rows + np.tile(np.arange(5), n)) % n
        coo = COOMatrix((n, n), rows, cols, np.ones(5 * n))
        assert nnz_per_row_per_cache_block(coo, n) == pytest.approx(5.0)

    def test_scatter_degrades(self):
        coo = random_coo(500, 100_000, 0.0002, seed=3)
        wide = nnz_per_row_per_cache_block(coo, 100_000)
        narrow = nnz_per_row_per_cache_block(coo, 1000)
        assert narrow < wide

    def test_empty(self):
        assert nnz_per_row_per_cache_block(COOMatrix.empty((5, 5)), 2) \
            == 0.0


class TestSpyplot:
    def test_shape_and_range(self):
        coo = random_coo(200, 300, 0.02, seed=4)
        g = spyplot_grid(coo, grid=32)
        assert g.shape == (32, 32)
        assert g.min() >= 0.0 and g.max() <= 1.0

    def test_diagonal_pattern(self):
        diag = COOMatrix((128, 128), np.arange(128), np.arange(128),
                         np.ones(128))
        g = spyplot_grid(diag, grid=8)
        assert (np.diag(g) > 0).all()
        off = g - np.diag(np.diag(g))
        assert off.sum() == 0.0

    def test_empty(self):
        g = spyplot_grid(COOMatrix.empty((10, 10)), grid=4)
        assert g.sum() == 0.0
