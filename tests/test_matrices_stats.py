"""Matrix structure statistics tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices.stats import (
    bandwidth_stats,
    block_fill_ratio,
    compute_stats,
    nnz_per_row_per_cache_block,
    row_length_stats,
    spyplot_grid,
    symmetry_fraction,
)
from tests.conftest import random_coo


class TestComputeStats:
    def test_basic_counts(self):
        coo = COOMatrix((4, 4), [0, 0, 2], [1, 3, 2], [1.0, 2.0, 3.0])
        s = compute_stats(coo)
        assert s.nnz == 3
        assert s.nnz_per_row_mean == pytest.approx(0.75)
        assert s.nnz_per_row_max == 2
        assert s.empty_rows == 2
        assert s.density == pytest.approx(3 / 16)

    def test_diagonal_concentration(self):
        diag = COOMatrix((100, 100), np.arange(100), np.arange(100),
                         np.ones(100))
        s = compute_stats(diag)
        assert s.diag_spread == pytest.approx(0.0)
        assert s.diag_concentration == 1.0

    def test_scatter_spread(self):
        coo = random_coo(200, 200, 0.05, seed=1)
        s = compute_stats(coo)
        assert 0.1 < s.diag_spread < 0.5

    def test_block_fill_bounds(self):
        coo = random_coo(64, 64, 0.05, seed=2)
        s = compute_stats(coo)
        for (r, c), fill in s.block_fill.items():
            assert 1.0 <= fill <= r * c

    def test_empty_matrix(self):
        s = compute_stats(COOMatrix.empty((5, 5)))
        assert s.nnz == 0
        assert s.block_fill[(2, 2)] == 1.0
        assert s.best_block() in s.block_fill

    def test_aspect_ratio(self):
        coo = COOMatrix((10, 1000), [0], [5], [1.0])
        assert compute_stats(coo).aspect_ratio == 100.0


class TestCacheBlockDensity:
    def test_dense_rows_stay_dense(self):
        # A banded matrix keeps its per-block inner-loop length.
        n = 1000
        rows = np.repeat(np.arange(n), 5)
        cols = (rows + np.tile(np.arange(5), n)) % n
        coo = COOMatrix((n, n), rows, cols, np.ones(5 * n))
        assert nnz_per_row_per_cache_block(coo, n) == pytest.approx(5.0)

    def test_scatter_degrades(self):
        coo = random_coo(500, 100_000, 0.0002, seed=3)
        wide = nnz_per_row_per_cache_block(coo, 100_000)
        narrow = nnz_per_row_per_cache_block(coo, 1000)
        assert narrow < wide

    def test_empty(self):
        assert nnz_per_row_per_cache_block(COOMatrix.empty((5, 5)), 2) \
            == 0.0


class TestSpyplot:
    def test_shape_and_range(self):
        coo = random_coo(200, 300, 0.02, seed=4)
        g = spyplot_grid(coo, grid=32)
        assert g.shape == (32, 32)
        assert g.min() >= 0.0 and g.max() <= 1.0

    def test_diagonal_pattern(self):
        diag = COOMatrix((128, 128), np.arange(128), np.arange(128),
                         np.ones(128))
        g = spyplot_grid(diag, grid=8)
        assert (np.diag(g) > 0).all()
        off = g - np.diag(np.diag(g))
        assert off.sum() == 0.0

    def test_empty(self):
        g = spyplot_grid(COOMatrix.empty((10, 10)), grid=4)
        assert g.sum() == 0.0


class TestRowLengthStats:
    """Consolidated helpers must survive empty / zero-row / single-row
    matrices without NaN or divide-by-zero."""

    def test_uniform_rows(self):
        coo = COOMatrix((4, 4), [0, 1, 2, 3], [1, 2, 3, 0], np.ones(4))
        s = row_length_stats(coo)
        assert s.mean == 1.0 and s.std == 0.0 and s.cv == 0.0
        assert s.min == 1 and s.max == 1
        assert s.empty_frac == 0.0

    def test_empty_matrix_all_zero(self):
        s = row_length_stats(COOMatrix.empty((0, 0)))
        assert s.mean == 0.0 and s.cv == 0.0 and s.max_rel == 0.0
        assert s.empty_frac == 0.0

    def test_shaped_but_all_rows_empty(self):
        s = row_length_stats(COOMatrix.empty((7, 7)))
        assert s.mean == 0.0
        assert s.empty_frac == 1.0

    def test_single_row(self):
        coo = COOMatrix((1, 8), [0, 0, 0], [0, 3, 6], np.ones(3))
        s = row_length_stats(coo)
        assert s.mean == 3.0 and s.min == 3 and s.max == 3
        assert s.cv == 0.0 and s.empty_frac == 0.0

    def test_skewed_rows(self):
        coo = COOMatrix((3, 10), [0] * 9 + [1], list(range(9)) + [0],
                        np.ones(10))
        s = row_length_stats(coo)
        assert s.max == 9 and s.min == 0
        assert s.empty_frac == pytest.approx(1 / 3)
        assert s.max_rel == pytest.approx(9 / s.mean)
        assert s.cv > 1.0


class TestBandwidthStats:
    def test_pure_diagonal(self):
        n = 50
        coo = COOMatrix((n, n), np.arange(n), np.arange(n), np.ones(n))
        s = bandwidth_stats(coo)
        assert s.mean == 0.0 and s.max == 0.0
        assert s.diag_frac == 1.0

    def test_empty_matrix(self):
        s = bandwidth_stats(COOMatrix.empty((6, 6)))
        assert s.mean == 0.0 and s.p95 == 0.0 and s.max == 0.0
        assert s.diag_frac == 0.0

    def test_single_entry_far_off_diagonal(self):
        coo = COOMatrix((100, 100), [0], [99], [1.0])
        s = bandwidth_stats(coo)
        assert s.max == pytest.approx(0.99)
        assert s.diag_frac == 0.0

    def test_rectangular_uses_scaled_diagonal(self):
        # entry (5, 50) in a 10x100 matrix sits ON the scaled diagonal
        coo = COOMatrix((10, 100), [5], [50], [1.0])
        s = bandwidth_stats(coo)
        assert s.mean == pytest.approx(0.0)
        assert s.diag_frac == 1.0


class TestSymmetryFraction:
    def test_symmetric_pattern(self):
        coo = COOMatrix((4, 4), [0, 1, 1, 2], [1, 0, 2, 1], np.ones(4))
        assert symmetry_fraction(coo) == 1.0

    def test_fully_asymmetric(self):
        coo = COOMatrix((4, 4), [0, 0, 0], [1, 2, 3], np.ones(3))
        # diagonal-free upper-triangle entries with no mirrors
        assert symmetry_fraction(coo) == 0.0

    def test_rectangular_is_zero(self):
        assert symmetry_fraction(
            COOMatrix((2, 5), [0], [4], [1.0])) == 0.0

    def test_empty_square_is_one(self):
        assert symmetry_fraction(COOMatrix.empty((3, 3))) == 1.0


class TestBlockFillRatio:
    def test_perfect_block(self):
        coo = COOMatrix((4, 4), [0, 0, 1, 1], [0, 1, 0, 1], np.ones(4))
        assert block_fill_ratio(coo, 2, 2) == pytest.approx(1.0)

    def test_scattered_pays_full_tile_overhead(self):
        # each nonzero lands in its own 2x2 tile: worst case r*c
        coo = COOMatrix((8, 8), [0, 2, 4, 6], [1, 3, 5, 7], np.ones(4))
        assert block_fill_ratio(coo, 2, 2) == pytest.approx(4.0)

    def test_empty_matrix_is_one(self):
        assert block_fill_ratio(COOMatrix.empty((4, 4)), 2, 2) == 1.0

    def test_invalid_block_shape_rejected(self):
        coo = COOMatrix((4, 4), [0], [0], [1.0])
        with pytest.raises(ValueError):
            block_fill_ratio(coo, 0, 2)
        with pytest.raises(ValueError):
            block_fill_ratio(coo, 2, -1)
