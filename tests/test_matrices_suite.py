"""Suite registry tests: every Table 3 matrix generates with the right
structure at reduced scale, and key entries match paper targets at
full scale (marked slow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.matrices import SUITE, generate, suite_names
from repro.matrices.stats import compute_stats, nnz_per_row_per_cache_block
from repro.matrices.suite import clear_cache, get_spec

SCALE = 0.05  # small but structurally faithful


class TestRegistry:
    def test_fourteen_matrices(self):
        assert len(SUITE) == 14

    def test_names_match_paper_order(self):
        assert suite_names()[0] == "Dense"
        assert suite_names()[-1] == "LP"
        assert "Epidem" in suite_names()

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            generate("NoSuchMatrix")

    def test_bad_scale_raises(self):
        with pytest.raises(ReproError):
            get_spec("Dense").generate(scale=0)

    def test_cache_returns_same_object(self):
        a = generate("Circuit", scale=0.02, seed=1)
        b = generate("Circuit", scale=0.02, seed=1)
        assert a is b
        clear_cache()
        c = generate("Circuit", scale=0.02, seed=1)
        assert c is not a

    def test_seed_changes_values(self):
        a = generate("Econom", scale=0.02, seed=1, cache=False)
        b = generate("Econom", scale=0.02, seed=2, cache=False)
        assert not np.array_equal(a.val, b.val)


@pytest.mark.parametrize("name", suite_names())
def test_generates_and_is_valid(name):
    coo = generate(name, scale=SCALE, seed=0)
    assert coo.nnz_logical > 0
    # SpMV works on every suite matrix.
    y = coo.spmv(np.ones(coo.ncols))
    assert np.isfinite(y).all()


@pytest.mark.parametrize("name", suite_names())
def test_nnz_per_row_shape(name):
    """Average nonzeros per row lands near the paper's Table 3 column."""
    spec = get_spec(name)
    coo = generate(name, scale=SCALE, seed=0)
    avg = coo.nnz_logical / coo.nrows
    if name == "Dense":
        # Dense rows scale with the matrix dimension.
        assert avg == coo.ncols
    elif name == "LP":
        # nnz/row scales with column count at reduced scale; check the
        # per-column density instead.
        assert coo.nnz_logical / coo.ncols == pytest.approx(10.34, rel=0.15)
    elif name == "QCD":
        assert avg == pytest.approx(38.0, rel=0.1)
    else:
        assert avg == pytest.approx(spec.nnz_per_row, rel=0.30)


class TestStructuralFingerprints:
    def test_fem_matrices_have_block_structure(self):
        # Dense dof×dof nodal blocks keep the 2x2 fill ratio far below
        # the ~3.4 a random scatter of the same density produces.
        for name, dof in [("FEM-Sphr", 3), ("FEM-Cant", 2), ("Tunnel", 6)]:
            coo = generate(name, scale=SCALE, seed=0)
            stats = compute_stats(coo)
            assert stats.block_fill[(2, 2)] < 2.0, name
            if dof % 2 == 0:
                # Aligned even blocks: 2x2 tiles pack perfectly.
                assert stats.best_block() != (1, 1), name

    def test_epidem_nearly_diagonal(self):
        coo = generate("Epidem", scale=SCALE, seed=0)
        stats = compute_stats(coo)
        assert stats.diag_spread < 0.02

    def test_webbase_heavy_tail_and_sparse_rows(self):
        coo = generate("Webbase", scale=SCALE, seed=0)
        counts = coo.row_counts()
        assert counts.mean() < 5
        assert counts.max() > 20 * counts.mean()

    def test_lp_aspect_ratio(self):
        coo = generate("LP", scale=SCALE, seed=0)
        assert coo.ncols > 100 * coo.nrows

    def test_accelerator_poor_cache_block_density(self):
        # §5.1: with ~17K-column cache blocks, FEM-Accel degenerates to
        # ~3 nnz/row/cacheblock while FEM-Sphr stays dense per block.
        accel = generate("FEM-Accel", scale=SCALE, seed=0)
        sphr = generate("FEM-Sphr", scale=SCALE, seed=0)
        cols = int(17_000 * SCALE)
        a = nnz_per_row_per_cache_block(accel, cols)
        s = nnz_per_row_per_cache_block(sphr, cols)
        assert a < 6
        assert s > 2 * a

    def test_circuit_short_rows(self):
        coo = generate("Circuit", scale=SCALE, seed=0)
        assert coo.nnz_logical / coo.nrows < 8


@pytest.mark.slow
class TestFullScaleTargets:
    """Full-scale structure checks against Table 3 (run with -m slow)."""

    @pytest.mark.parametrize(
        "name", ["Protein", "FEM-Sphr", "Econom", "Epidem", "QCD"]
    )
    def test_dims_and_nnz(self, name):
        spec = get_spec(name)
        coo = generate(name, scale=1.0, seed=0)
        assert coo.nrows == pytest.approx(spec.rows, rel=0.05)
        assert coo.nnz_logical == pytest.approx(spec.nnz, rel=0.15)
