"""Metric-name drift guard.

The observability plane is only useful if the names the code emits,
the names ``render_prometheus()`` exposes, and the names the README
documents are the *same* names. This test pins the documented set:

* ``DOCUMENTED`` is the canonical contract — every name here must be
  emitted by a smoke run of the full serve→dist stack and must appear
  in the README's Observability/Serving/Distributed sections;
* the Prometheus rendering of each name must appear on ``/metrics``.

Adding a metric? Emit it, document it in README.md, then add it here.
Renaming one? This test is the list of places that must change
together.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.dist.group import ShardGroup
from repro.observe import context, new_trace
from repro.observe.hub import uninstall_hub
from repro.observe.metrics import (
    MetricsRegistry,
    get_registry,
    render_prometheus,
    sample_process_gauges,
)
from repro.observe.perf import MachineCeilings, PerfWatchdog
from repro.serve.client import ServeClient

README = os.path.join(os.path.dirname(__file__), "..", "README.md")

#: The documented metric contract: name -> kind. Histogram names are
#: also required to expose ``_bucket`` series on /metrics (real
#: fixed-bucket histograms, not summaries).
DOCUMENTED = {
    # serve tier (scheduler.py / worker.py / registry.py)
    "serve.requests": "counter",
    "serve.batches": "counter",
    "serve.batched_requests": "counter",
    "serve.kernel_invocations": "counter",
    "serve.rejected": "counter",
    "serve.batch_size": "histogram",
    "serve.worker_tasks": "counter",
    "serve.worker_busy_seconds": "counter",
    # dist tier (group.py / fault.py / shard.py)
    "dist.spmv_calls": "counter",
    "dist.compute_dispatches": "counter",
    "dist.shards_alive": "gauge",
    "dist.shards_spawned": "counter",
    "dist.shard_busy_seconds": "counter",
    "dist.heartbeat_age": "gauge",
    "dist.phase_seconds": "histogram",
    "dist.compute_imbalance": "gauge",
    "dist.child_computes": "counter",
    "dist.child_compute_seconds": "histogram",
    "dist.telemetry_messages": "counter",
    # SLO accounting (observe/slo.py, fed by the scheduler)
    "slo.request_seconds": "histogram",
    "slo.phase_seconds": "histogram",
    # learned plan selection (autoplan/, fed by registry.register)
    "autoplan.predictions": "counter",
    "autoplan.registration_seconds": "histogram",
    # online autotuning (autoplan/online.py, fed by the scheduler)
    "autoplan.online_promotions": "counter",
    # kernel dispatch (kernels/registry.py + cbackend/loader.py):
    # every spmv/spmm records which ISA variant actually ran
    "kernels.variant_selected": "counter",
    # roofline attribution + watchdog (observe/perf/)
    "perf.gflops": "histogram",
    "perf.gbs": "histogram",
    "perf.roofline_fraction": "histogram",
    "perf.regressions": "counter",
    # cluster tier (cluster/router.py / node.py / aserver.py)
    "cluster.requests": "counter",
    "cluster.forwards": "counter",
    "cluster.forward_seconds": "histogram",
    "cluster.failovers": "counter",
    "cluster.nodes_up": "gauge",
    "cluster.wire_bytes": "counter",
    "cluster.connections": "gauge",
    # standard process gauges (observe/metrics.py, sampled on scrape)
    "process.rss_bytes": "gauge",
    "process.open_fds": "gauge",
    "process.uptime_seconds": "gauge",
}


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


@pytest.fixture(scope="module")
def smoke_registry():
    """One serve→dist smoke run; yields the parent registry text."""
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("needs the fork start method")
    rng = np.random.default_rng(7)
    n = 120
    from repro.formats.coo import COOMatrix

    coo = COOMatrix(
        (n, n), rng.integers(0, n, 1200), rng.integers(0, n, 1200),
        rng.standard_normal(1200),
    )
    ceilings = MachineCeilings(
        copy_gbs_single=10.0, triad_gbs_single=12.0,
        copy_gbs_all=20.0, triad_gbs_all=24.0,
        peak_gflops_single=5.0, peak_gflops_all=20.0,
        n_cores=2, spmv_probe_gflops={},
    )
    client = ServeClient(
        shards=2, shard_threshold_bytes=1, trace_sample_rate=1.0,
        plan_mode="auto",   # no model yet: emits the fallback outcome
        perf_watch=ceilings,  # hand-built: no measurement in tests
    )
    try:
        fp = client.register(coo).fingerprint
        x = rng.standard_normal(n)
        with context.use(new_trace(sampled=True)):
            client.spmv(fp, x)
        for _ in range(3):
            client.spmv(fp, x)
        # exercise admission control so serve.rejected exists
        from repro.errors import ServeAdmissionError
        from repro.serve.scheduler import BatchScheduler
        from repro.serve.worker import WorkerPool

        pool = WorkerPool(1)
        sched = BatchScheduler(pool, max_queue=0)
        with pytest.raises(ServeAdmissionError):
            sched.submit(client.registry.get(fp), x)
        sched.close()
        pool.shutdown()
        # an online promotion verdict is an *event*: drive a tuner
        # against a small non-sharded registry directly (same
        # precedent as serve.rejected above). Works with or without a
        # compiler — a no-better-candidate verdict still counts under
        # outcome="kept".
        from repro.autoplan.online import OnlineTuner
        from repro.machines.registry import get_machine
        from repro.serve.registry import MatrixRegistry

        reg2 = MatrixRegistry(get_machine("AMD X2"), n_threads=1)
        entry2 = reg2.register(coo)
        pool2 = WorkerPool(1)
        sched2 = BatchScheduler(pool2)
        tuner = OnlineTuner(reg2, sched2, hot_threshold=1, iters=1)
        tuner.note_batch(entry2)
        sched2.drain()
        sched2.close()
        pool2.shutdown()
        # a regression is an *event*, not steady-state: drive a
        # watchdog directly (same precedent as serve.rejected above)
        wd = PerfWatchdog(slo=client.slo)
        wd.min_samples, wd.sustain = 2, 2
        for _ in range(4):
            wd.observe("fp-reg", "csr/numpy", 1.0)
        for _ in range(2):
            wd.observe("fp-reg", "csr/numpy", 0.1)
        # cluster tier: one node behind a router, one good request
        # (forwards/forward_seconds/wire_bytes/connections), then kill
        # the node and request again so the failover path runs (the
        # health interval is long, so the router still trusts the dead
        # node and must fail over on the live socket error).
        from repro.cluster import ClusterClient, ClusterNode, ClusterRouter
        from repro.dist.fault import RetryPolicy
        from repro.errors import ClusterError

        node = ClusterNode(machine="AMD X2", n_threads=1,
                           max_batch=2).start()
        router = ClusterRouter(
            [node.address], replication=1,
            retry=RetryPolicy(max_retries=1, backoff_s=0.001),
            health_interval_s=60.0).start()
        cc = ClusterClient(router.address)
        try:
            cfp = cc.register(coo)["fingerprint"]
            cc.spmv(cfp, x)
            node.close()
            with pytest.raises(ClusterError):
                cc.spmv(cfp, x)
        finally:
            cc.close()
            router.close()
            node.close()
        # process gauges are scrape-sampled; mirror the /metrics path
        sample_process_gauges()
        # let the shard children's DeltaFlushers ship their counters
        # and perf.* histograms
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            snap = get_registry().snapshot()
            shards_in = {k for k in snap["counters"]
                         if k.startswith("dist.child_computes")}
            if (len(shards_in) >= 2
                    and any(k.startswith("perf.gflops")
                            for k in snap["histograms"])):
                break
            time.sleep(0.05)
        yield get_registry(), render_prometheus()
    finally:
        client.close()
        uninstall_hub()


def test_documented_names_are_emitted(smoke_registry):
    registry, _ = smoke_registry
    snap = registry.snapshot()
    emitted = {
        key.split("{", 1)[0]
        for section in ("counters", "gauges", "histograms")
        for key in snap[section]
    }
    missing = sorted(n for n in DOCUMENTED if n not in emitted)
    assert not missing, f"documented metrics never emitted: {missing}"


def test_documented_kinds_match(smoke_registry):
    registry, _ = smoke_registry
    snap = registry.snapshot()
    by_kind = {"counter": "counters", "gauge": "gauges",
               "histogram": "histograms"}
    for name, kind in DOCUMENTED.items():
        section = snap[by_kind[kind]]
        assert any(k.split("{", 1)[0] == name for k in section), \
            f"{name} documented as {kind} but absent from that section"


def test_prometheus_exposition_has_documented_names(smoke_registry):
    _, text = smoke_registry
    for name, kind in DOCUMENTED.items():
        prom = _prom_name(name)
        assert f"# TYPE {prom} " in text, f"{prom} missing TYPE line"
        if kind == "histogram":
            assert f"{prom}_bucket{{" in text, \
                f"{prom} renders without _bucket series"


def test_readme_documents_the_same_names():
    with open(README, encoding="utf-8") as f:
        readme = f.read()
    missing = sorted(n for n in DOCUMENTED if f"`{n}" not in readme)
    assert not missing, \
        f"metrics emitted+tested but undocumented in README: {missing}"


def test_shard_children_reach_parent_metrics(smoke_registry):
    registry, text = smoke_registry
    snap = registry.snapshot()
    child = [k for k in snap["counters"]
             if k.startswith("dist.child_computes")]
    # both shards flushed, and the merged series render for scraping
    assert len(child) >= 2, f"expected per-shard series, got {child}"
    assert 'repro_dist_child_computes{shard="0"}' in text
    assert 'repro_dist_child_computes{shard="1"}' in text


def test_registry_merge_roundtrip_prefixes():
    """Cross-process names survive a snapshot→delta→merge cycle
    unchanged (the aggregation plane must not rename anything)."""
    from repro.observe.flush import diff_flat

    src, dst = MetricsRegistry(), MetricsRegistry()
    src.inc("dist.child_computes", 3, shard=1)
    src.observe("dist.child_compute_seconds", 0.25, shard=1)
    delta = diff_flat(src.snapshot_flat(), {})
    dst.merge_flat(delta)
    snap = dst.snapshot()
    assert snap["counters"]["dist.child_computes{shard=1}"] == 3
    assert "dist.child_compute_seconds{shard=1}" in snap["histograms"]
