"""Tests for the observability layer (repro.observe)."""

from __future__ import annotations

import json

import pytest

from repro.core import OptimizationLevel, SpmvEngine
from repro.machines import get_machine
from repro.matrices import generate
from repro.observe import (
    BottleneckAttribution,
    NULL_SPAN,
    Tracer,
    attribute,
    bottleneck_shares,
)
from repro.observe import metrics as metrics_mod
from repro.observe import trace as trace_mod
from repro.observe.metrics import MetricsRegistry, get_registry
from repro.observe.trace import read_trace


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with tracing off and metrics empty."""
    trace_mod.disable()
    get_registry().reset()
    yield
    trace_mod.disable()
    get_registry().reset()


class TestTracer:
    def test_spans_nest_and_record_depth(self):
        t = trace_mod.enable()
        with trace_mod.span("outer", kind="test"):
            with trace_mod.span("inner"):
                pass
        events = t.events
        assert [e.name for e in events] == ["inner", "outer"]
        by_name = {e.name: e for e in events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].start_us >= by_name["outer"].start_us
        assert by_name["outer"].duration_us >= by_name["inner"].duration_us
        assert by_name["outer"].args == {"kind": "test"}

    def test_set_attaches_args(self):
        t = trace_mod.enable()
        with trace_mod.span("s") as s:
            s.set(n_blocks=4)
        assert t.events[0].args == {"n_blocks": 4}

    def test_exception_is_annotated_and_propagates(self):
        t = trace_mod.enable()
        with pytest.raises(ValueError):
            with trace_mod.span("boom"):
                raise ValueError("x")
        assert t.events[0].args["error"] == "ValueError"

    def test_jsonl_round_trip(self, tmp_path):
        t = trace_mod.enable()
        with trace_mod.span("a", matrix="Dense"):
            with trace_mod.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        n = t.write_jsonl(path)
        assert n == 2
        events = read_trace(path)
        assert [e.name for e in events] == ["b", "a"]
        assert events[1].args == {"matrix": "Dense"}
        assert events[0].duration_us >= 0.0
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_chrome_export(self, tmp_path):
        t = trace_mod.enable()
        with trace_mod.span("phase"):
            pass
        path = tmp_path / "trace.json"
        assert t.write_chrome(path) == 1
        doc = json.loads(path.read_text())
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X" and ev["name"] == "phase"
        assert ev["ts"] >= 0 and ev["dur"] >= 0

    def test_disabled_tracer_is_noop(self):
        assert not trace_mod.is_enabled()
        s = trace_mod.span("anything", big=1)
        assert s is NULL_SPAN
        with s as inner:
            inner.set(ignored=True)
        # Enabling afterwards starts from a clean slate: nothing from
        # the disabled period leaked anywhere.
        t = trace_mod.enable()
        assert t.events == []

    def test_disabled_instrumented_pipeline_emits_nothing(self):
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = generate("Dense", scale=0.02, seed=0)
        engine.simulate(engine.plan(coo, n_threads=1))
        t = trace_mod.enable()
        assert t.events == []

    def test_clear(self):
        t = trace_mod.enable()
        with trace_mod.span("x"):
            pass
        t.clear()
        assert t.events == []

    def test_standalone_tracer_instances_are_independent(self):
        a, b = Tracer(), Tracer()
        with a.span("only-a"):
            pass
        assert a.names() == ["only-a"]
        assert b.names() == []


class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("plan.calls")
        reg.inc("plan.calls", 2)
        reg.inc("heuristic.format_chosen", 3, fmt="bcsr")
        reg.gauge("bench.sweep_progress", 0.5, machine="AMD X2")
        reg.observe("native.worker_seconds", 0.1)
        reg.observe("native.worker_seconds", 0.3)
        assert reg.counter("plan.calls") == 3
        assert reg.counter("heuristic.format_chosen", fmt="bcsr") == 3
        assert reg.counter("heuristic.format_chosen", fmt="csr") == 0
        assert reg.gauge_value("bench.sweep_progress",
                               machine="AMD X2") == 0.5
        h = reg.histogram("native.worker_seconds")
        assert h.count == 2 and h.min == 0.1 and h.max == 0.3
        assert h.mean == pytest.approx(0.2)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", b=1, a=2)
        assert reg.counter("m", a=2, b=1) == 1

    def test_reset_clears_everything(self):
        reg = get_registry()
        reg.inc("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 2.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_registry_resets_between_tests_1(self):
        get_registry().inc("leak.check")
        assert get_registry().counter("leak.check") == 1

    def test_registry_resets_between_tests_2(self):
        # Runs after _1 under -p no:randomly default ordering, but the
        # autouse fixture guarantees isolation in any order.
        assert get_registry().counter("leak.check") == 0

    def test_render(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics recorded)"
        reg.inc("plan.calls", 5)
        reg.observe("t", 1.0)
        out = reg.render()
        assert "plan.calls" in out and "5" in out and "n=1" in out
        assert reg.render(prefix="nope") == "(no metrics recorded)"


class TestAttribution:
    def test_shares_sum_to_one(self):
        for comp, mem, kind in [(1.0, 3.0, "memory"), (2.0, 0.5, "memory"),
                                (1.0, 4.0, "latency"), (0.0, 1.0, "memory")]:
            s = bottleneck_shares(comp, mem, kind)
            assert s.memory + s.compute + s.latency == pytest.approx(1.0)

    def test_latency_kind_routes_memory_component(self):
        s = bottleneck_shares(1.0, 3.0, "latency")
        assert s.memory == 0.0
        assert s.latency == pytest.approx(0.75)
        assert s.dominant == "latency"

    def test_degenerate_zero_time(self):
        s = bottleneck_shares(0.0, 0.0)
        assert s.compute == 1.0
        assert s.memory + s.compute + s.latency == pytest.approx(1.0)

    def test_attribute_real_simulation(self):
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = generate("Econom", scale=0.05, seed=0)
        res = engine.simulate(engine.plan(coo, n_threads=4))
        shares = attribute(res)
        assert shares.memory + shares.compute + shares.latency == \
            pytest.approx(1.0)
        att = res.extras["attribution"]
        assert att["memory_share"] + att["compute_share"] + \
            att["latency_share"] == pytest.approx(1.0)
        assert res.extras["phase_seconds"]["memory_model"] >= 0.0
        assert res.extras["phase_seconds"]["compute_model"] >= 0.0

    def test_attribute_without_extras_recomputes(self):
        engine = SpmvEngine(get_machine("Niagara"))
        coo = generate("Dense", scale=0.02, seed=0)
        res = engine.simulate(engine.plan(coo, n_threads=1))
        stripped = type(res)(**{
            **{f: getattr(res, f) for f in (
                "machine_name", "time_s", "gflops", "traffic",
                "sustained_gbs", "compute_time_s", "memory_time_s",
                "bottleneck", "cache_resident", "sockets",
                "cores_per_socket", "threads_per_core", "imbalance",
            )},
            "extras": {},
        })
        s = attribute(stripped)
        assert s.memory + s.compute + s.latency == pytest.approx(1.0)

    def test_aggregation_rows_and_table(self):
        engine = SpmvEngine(get_machine("AMD X2"))
        att = BottleneckAttribution()
        for name in ["Econom", "Circuit"]:
            coo = generate(name, scale=0.05, seed=0)
            for t in (1, 4):
                att.add(engine.simulate(engine.plan(coo, n_threads=t)),
                        matrix=name, label=f"{t}t")
        rows = att.rows()
        assert len(rows) == 2  # grouped by (machine, matrix)
        for row in rows:
            assert row["n"] == 2
            total = (row["memory_share"] + row["compute_share"]
                     + row["latency_share"])
            assert total == pytest.approx(1.0)
            assert row["bound"] in ("memory", "compute", "latency")
            assert row["max_imbalance"] >= 1.0
        by_label = att.rows(group_by=("label",))
        assert {r["label"] for r in by_label} == {"1t", "4t"}
        table = att.table()
        assert "mem%" in table and "Econom" in table

    def test_niagara_single_thread_is_latency_bound(self):
        # The paper's signature case: 1-thread in-order Niagara exposes
        # full memory latency; attribution must say "latency", not
        # "memory".
        engine = SpmvEngine(get_machine("Niagara"))
        coo = generate("Econom", scale=0.05, seed=0)
        res = engine.simulate(engine.plan(
            coo, level=OptimizationLevel.NAIVE, n_threads=1
        ))
        shares = attribute(res)
        assert shares.latency > 0.1
        assert shares.memory == 0.0


class TestPipelineInstrumentation:
    def test_plan_and_simulate_emit_phase_spans(self):
        t = trace_mod.enable()
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = generate("Econom", scale=0.05, seed=0)
        plan = engine.plan(coo, n_threads=2)
        engine.simulate(plan)
        names = set(t.names())
        for expected in ["engine.plan", "plan.partition",
                         "plan.cache_block", "plan.format_select",
                         "engine.simulate", "sim.memory", "sim.compute"]:
            assert expected in names, expected
        # plan's span knows how many blocks it created
        plan_ev = next(e for e in t.events if e.name == "engine.plan")
        assert plan_ev.args["n_blocks"] == len(plan.profile.blocks)
        assert plan_ev.args["machine"] == "AMD X2"

    def test_plan_metrics(self):
        reg = get_registry()
        engine = SpmvEngine(get_machine("AMD X2"))
        coo = generate("Econom", scale=0.05, seed=0)
        plan = engine.plan(coo, n_threads=2)
        assert reg.counter("plan.calls") == 1
        assert reg.counter("plan.blocks_created") == \
            len(plan.profile.blocks)
        snap = reg.snapshot()["counters"]
        fmt_total = sum(
            v for k, v in snap.items()
            if k.startswith("heuristic.format_chosen{")
        )
        assert fmt_total == len(plan.choices)
        engine.simulate(plan)
        assert reg.counter("sim.runs", machine="AMD X2") == 1

    def test_tune_records_materialize_span(self):
        t = trace_mod.enable()
        engine = SpmvEngine(get_machine("Clovertown"))
        coo = generate("Dense", scale=0.02, seed=0)
        engine.tune(coo, n_threads=1)
        assert "engine.materialize" in t.names()
        assert get_registry().counter("engine.tunes") == 1


class TestBaselineInstrumentation:
    def test_oski_spans_and_counters(self):
        from repro.baselines import OskiTuner

        t = trace_mod.enable()
        tuner = OskiTuner(get_machine("AMD X2"))
        coo = generate("Circuit", scale=0.05, seed=0)
        tuner.simulate(coo)
        names = set(t.names())
        assert "oski.machine_profile" in names
        assert "oski.choose_blocking" in names
        reg = get_registry()
        assert reg.counter("oski.profile_builds", machine="AMD X2") == 1
        assert reg.counter("oski.fill_estimates") > 0
        # Second tune reuses the memoized profile.
        tuner.simulate(coo)
        assert reg.counter("oski.profile_builds", machine="AMD X2") == 1

    def test_petsc_spans_and_comm_fraction(self):
        from repro.baselines.petsc import petsc_spmv_model

        t = trace_mod.enable()
        coo = generate("Econom", scale=0.05, seed=0)
        res = petsc_spmv_model(coo, get_machine("AMD X2"), 2)
        names = set(t.names())
        assert "petsc.tune_ranks" in names
        assert "petsc.comm_model" in names
        h = get_registry().histogram("petsc.comm_fraction")
        assert h.count == 1
        assert h.max == pytest.approx(res.comm_fraction)


class TestNativeInstrumentation:
    def test_worker_seconds_recorded(self):
        import multiprocessing as mp

        from repro.formats import coo_to_csr
        from repro.parallel.native import native_parallel_spmv
        from tests.conftest import random_coo

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("no fork on this platform")
        import numpy as np

        coo = random_coo(400, 400, 0.05, seed=3)
        csr = coo_to_csr(coo)
        x = np.ones(csr.ncols)
        y = native_parallel_spmv(csr, x, n_workers=2,
                                 min_nnz_per_worker=1)
        np.testing.assert_allclose(y, csr.spmv(x), rtol=1e-12)
        reg = get_registry()
        assert reg.counter("native.calls") == 1
        assert reg.histogram("native.worker_seconds").count == 2
        assert reg.gauge_value("native.last_imbalance") >= 1.0

    def test_serial_fallback_counted(self):
        import numpy as np

        from repro.formats import coo_to_csr
        from tests.conftest import random_coo
        from repro.parallel.native import native_parallel_spmv

        coo = random_coo(50, 50, 0.1, seed=4)
        csr = coo_to_csr(coo)
        native_parallel_spmv(csr, np.ones(50))  # too small: serial
        assert get_registry().counter("native.serial_fallbacks") == 1


class TestPrometheusRendering:
    def test_counters_and_types(self):
        reg = MetricsRegistry()
        reg.inc("serve.batches", 3)
        reg.inc("heuristic.format_chosen", 2, fmt="bcsr")
        text = reg.render_prometheus()
        assert "# TYPE repro_serve_batches counter" in text
        assert "repro_serve_batches 3" in text
        assert 'repro_heuristic_format_chosen{fmt="bcsr"} 2' in text
        assert text.endswith("\n")

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("serve.registry_bytes", 1234.0)
        text = reg.render_prometheus()
        assert "# TYPE repro_serve_registry_bytes gauge" in text
        assert "repro_serve_registry_bytes 1234" in text

    def test_histogram_with_buckets(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("serve.batch_size", v)
        text = reg.render_prometheus()
        assert "# TYPE repro_serve_batch_size histogram" in text
        assert 'repro_serve_batch_size_bucket{le="1"} 1' in text
        assert 'repro_serve_batch_size_bucket{le="+Inf"} 3' in text
        assert "repro_serve_batch_size_count 3" in text
        assert "repro_serve_batch_size_sum 6" in text
        assert "repro_serve_batch_size_min 1" in text
        assert "repro_serve_batch_size_max 3" in text

    def test_histogram_buckets_with_labels(self):
        reg = MetricsRegistry()
        reg.observe("slo.request_seconds", 0.01, op="spmv")
        text = reg.render_prometheus()
        assert 'op="spmv",le="+Inf"} 1' in text
        # Cumulative count at the last finite bound covers everything.
        h = reg.histogram("slo.request_seconds", op="spmv")
        assert sum(h.bucket_counts) == 1

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.inc("weird-name.with/slash")
        text = reg.render_prometheus()
        assert "repro_weird_name_with_slash 1" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.inc("serve.http_requests", route='GET /metrics')
        text = reg.render_prometheus()
        assert 'route="GET /metrics"' in text

    def test_label_value_escaping_special_chars(self):
        # Exposition format 0.0.4: label values escape backslash,
        # double-quote, and newline — in that order, so an original
        # backslash never doubles an escape we just inserted.
        reg = MetricsRegistry()
        reg.inc("serve.http_requests", route='GET /a"b\\c\nd')
        text = reg.render_prometheus()
        assert 'route="GET /a\\"b\\\\c\\nd"' in text
        # the rendered exposition stays one line per sample
        sample_lines = [ln for ln in text.splitlines()
                        if "serve_http_requests{" in ln]
        assert len(sample_lines) == 1

    def test_process_gauges(self):
        from repro.observe import get_registry, sample_process_gauges

        sample_process_gauges()
        snap = get_registry().snapshot()
        up = snap["gauges"]["process.uptime_seconds"]
        assert up >= 0
        # Linux /proc paths present in CI; values must be sane.
        if "process.rss_bytes" in snap["gauges"]:
            assert snap["gauges"]["process.rss_bytes"] > 1 << 20
        if "process.open_fds" in snap["gauges"]:
            assert snap["gauges"]["process.open_fds"] >= 3

    def test_custom_prefix_and_empty(self):
        reg = MetricsRegistry()
        assert reg.render_prometheus() == ""
        reg.inc("x")
        assert "spmv_x 1" in reg.render_prometheus(prefix="spmv_")

    def test_one_type_line_per_labeled_family(self):
        reg = MetricsRegistry()
        reg.inc("serve.worker_tasks", worker=0)
        reg.inc("serve.worker_tasks", worker=1)
        text = reg.render_prometheus()
        assert text.count("# TYPE repro_serve_worker_tasks counter") == 1
        assert 'repro_serve_worker_tasks{worker="0"} 1' in text
        assert 'repro_serve_worker_tasks{worker="1"} 1' in text

    def test_module_level_function(self):
        from repro.observe import render_prometheus

        get_registry().inc("serve.requests", 5)
        assert "repro_serve_requests 5" in render_prometheus()
