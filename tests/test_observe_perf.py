"""Live roofline observability: ceilings, attribution, watchdog, sampler.

Covers the ``repro.observe.perf`` package end to end: measured-ceilings
cache discipline, flop/byte attribution math, the regression watchdog's
EWMA/force-sampling semantics, the collapsed-stack sampler, and the
acceptance path — one sharded ``ServeClient(perf_watch=...)`` request
producing per-shard ``perf.*`` series on the parent registry, plus a
sleep-injected kernel slowdown tripping ``perf.regressions``.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from repro.formats.convert import coo_to_csr
from repro.matrices import generate
from repro.observe import get_registry
from repro.observe.perf import (
    KernelCounts,
    MachineCeilings,
    PerfAttributor,
    PerfWatchdog,
    StackSampler,
    collate_stacks,
    host_fingerprint,
    load_ceilings,
    measure_ceilings,
    render_collapsed,
    save_ceilings,
)
from repro.observe.perf import attribution as _attribution
from repro.observe.perf import ceilings as _ceilings
from repro.observe.perf.sampler import parse_collapsed
from repro.observe.slo import SloTracker

TEST_CEILINGS = MachineCeilings(
    copy_gbs_single=10.0, triad_gbs_single=12.0,
    copy_gbs_all=20.0, triad_gbs_all=24.0,
    peak_gflops_single=5.0, peak_gflops_all=20.0,
    n_cores=2, spmv_probe_gflops={"numpy": 1.0},
)


@pytest.fixture
def tiny_ceilings(monkeypatch):
    """Fast real measurement: tiny streams, no SpMV probe."""
    monkeypatch.setenv("REPRO_CEILINGS_MB", "1")
    return measure_ceilings(repeats=1, probe_spmv=False)


class TestCeilings:
    def test_measure_positive(self, tiny_ceilings):
        c = tiny_ceilings
        assert c.copy_gbs_single > 0
        assert c.triad_gbs_single > 0
        assert c.peak_gflops_single > 0
        assert c.sustained_gbs >= c.copy_gbs_single
        assert c.peak_gflops >= c.peak_gflops_single
        assert c.n_cores >= 1

    def test_attainable_roofline_shape(self):
        c = TEST_CEILINGS
        # memory-bound region: linear in intensity
        assert c.attainable_gflops(0.1) == pytest.approx(
            0.1 * c.sustained_gbs)
        # compute-bound region: flat at peak
        assert c.attainable_gflops(100.0) == c.peak_gflops
        # degenerate intensity: no bound
        assert c.attainable_gflops(0.0) == 0.0
        assert c.attainable_gflops(-1.0) == 0.0

    def test_json_roundtrip(self):
        c = TEST_CEILINGS
        assert MachineCeilings.from_json(
            json.loads(json.dumps(c.to_json()))) == c

    def test_cache_roundtrip(self, tmp_path):
        path = tmp_path / "ceilings.json"
        save_ceilings(TEST_CEILINGS, path)
        assert load_ceilings(path) == TEST_CEILINGS

    def test_cache_missing_returns_none(self, tmp_path):
        assert load_ceilings(tmp_path / "nope.json") is None

    def test_cache_corrupt_returns_none(self, tmp_path):
        path = tmp_path / "ceilings.json"
        path.write_text("{not json")
        assert load_ceilings(path) is None

    def test_cache_stale_version_returns_none(self, tmp_path):
        path = tmp_path / "ceilings.json"
        save_ceilings(TEST_CEILINGS, path)
        env = json.loads(path.read_text())
        env["ceilings_version"] = -1
        path.write_text(json.dumps(env))
        assert load_ceilings(path) is None

    def test_cache_host_mismatch_returns_none(self, tmp_path):
        path = tmp_path / "ceilings.json"
        save_ceilings(TEST_CEILINGS, path)
        env = json.loads(path.read_text())
        env["host"]["cpu"] = "some other cpu entirely"
        path.write_text(json.dumps(env))
        assert load_ceilings(path) is None

    def test_fingerprint_fields(self):
        fp = host_fingerprint()
        assert set(fp) == {"cpu", "n_cores", "machine", "version",
                           "ceilings_version"}
        from repro import __version__

        assert fp["version"] == __version__

    def test_get_ceilings_measures_once_then_caches(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CEILINGS_MB", "1")
        path = tmp_path / "ceilings.json"
        calls = {"n": 0}
        real = _ceilings.measure_ceilings

        def counting(**kw):
            calls["n"] += 1
            return real(repeats=1, probe_spmv=False)

        monkeypatch.setattr(_ceilings, "measure_ceilings", counting)
        # fresh module memo for this test
        monkeypatch.setattr(_ceilings, "_CACHED", None)
        first = _ceilings.get_ceilings(path)
        second = _ceilings.get_ceilings(path)
        assert calls["n"] == 1
        assert first == second
        assert path.exists()
        # a fresh process (cleared memo) loads from disk, no re-measure
        monkeypatch.setattr(_ceilings, "_CACHED", None)
        third = _ceilings.get_ceilings(path)
        assert calls["n"] == 1
        assert third == first


class TestAttribution:
    def setup_method(self):
        self.csr = coo_to_csr(generate("FEM-Har", scale=0.05, seed=0))

    def test_kernel_counts(self):
        kc = KernelCounts.for_matrix(self.csr)
        m, n = self.csr.shape
        assert kc.flops == 2.0 * self.csr.nnz_logical
        assert kc.matrix_bytes == float(self.csr.footprint_bytes())
        assert kc.vector_bytes == 8.0 * n + 16.0 * m
        assert kc.fmt == "csr"
        # k-wide SpMM: matrix streamed once, vectors per column
        assert kc.total_bytes(4) == pytest.approx(
            kc.matrix_bytes + 4 * kc.vector_bytes)
        assert kc.total_flops(4) == pytest.approx(4 * kc.flops)
        # intensity consistent with the footprint module
        from repro.formats.footprint import flop_byte_ratio

        assert kc.intensity(1) == pytest.approx(
            flop_byte_ratio(self.csr))

    def test_sample_math(self):
        att = PerfAttributor(ceilings=TEST_CEILINGS)
        kc = KernelCounts.for_matrix(self.csr)
        s = att.sample(kc, 1e-3, k=2, backend="numpy")
        assert s.gflops == pytest.approx(
            kc.total_flops(2) / 1e-3 / 1e9)
        assert s.gbs == pytest.approx(
            kc.total_bytes(2) / 1e-3 / 1e9)
        bound = TEST_CEILINGS.attainable_gflops(s.intensity)
        assert s.fraction == pytest.approx(s.gflops / bound)
        assert s.has_fraction

    def test_sample_without_ceilings_has_nan_fraction(self):
        att = PerfAttributor(ceilings=None)
        kc = KernelCounts.for_matrix(self.csr)
        s = att.sample(kc, 1e-3)
        assert math.isnan(s.fraction)
        assert not s.has_fraction

    def test_record_emits_histograms(self):
        att = PerfAttributor(ceilings=TEST_CEILINGS)
        kc = KernelCounts.for_matrix(self.csr)
        att.record(kc, 1e-3, backend="numpy")
        att.record(kc, 1e-3, backend="numpy", shard=3)
        reg = get_registry()
        h = reg.histogram("perf.gflops", backend="numpy", format="csr")
        assert h.count >= 1
        hs = reg.histogram("perf.gflops", backend="numpy",
                           format="csr", shard=3)
        assert hs.count >= 1
        hf = reg.histogram("perf.roofline_fraction", backend="numpy",
                           format="csr")
        assert hf.count >= 1 and hf.max < math.inf

    def test_record_skips_zero_seconds(self):
        att = PerfAttributor(ceilings=TEST_CEILINGS)
        kc = KernelCounts.for_matrix(self.csr)
        assert att.record(kc, 0.0) is None
        assert att.record(kc, -1.0) is None

    def test_spmv_backend_is_attributed(self):
        from repro.kernels.registry import spmv_backend

        before = get_registry().histogram(
            "perf.gflops", backend="numpy", format="csr").count
        x = np.random.default_rng(0).standard_normal(self.csr.ncols)
        spmv_backend(self.csr, x)
        after = get_registry().histogram(
            "perf.gflops", backend="numpy", format="csr").count
        assert after == before + 1

    def test_configure_globals(self):
        prev = _attribution.global_ceilings()
        try:
            _attribution.configure(TEST_CEILINGS)
            assert _attribution.global_ceilings() is TEST_CEILINGS
            assert (_attribution.get_attributor().ceilings
                    is TEST_CEILINGS)
        finally:
            _attribution.configure(prev)

    def test_format_labels(self):
        from repro.formats.convert import to_bcsr

        bcsr = to_bcsr(generate("Dense2", scale=0.02, seed=0), 2, 2)
        assert KernelCounts.for_matrix(bcsr).fmt == "bcsr"


class TestWatchdog:
    def _warm(self, wd, fp="fp-a", key="csr/numpy", rate=1.0, n=None):
        for _ in range(n if n is not None else wd.min_samples + 2):
            assert wd.observe(fp, key, rate, 0.5) is None

    def test_no_fire_during_warmup(self):
        wd = PerfWatchdog(min_samples=5, sustain=2)
        for _ in range(4):
            assert wd.observe("fp", "csr/numpy", 0.01) is None

    def test_sustained_drop_fires_and_arms_force_sampling(self):
        slo = SloTracker()
        wd = PerfWatchdog(slo=slo, min_samples=3, sustain=2)
        before = get_registry().counter("perf.regressions",
                                        key="csr/numpy")
        self._warm(wd, n=5)
        assert wd.observe("fp-a", "csr/numpy", 0.1) is None  # 1st drop
        event = wd.observe("fp-a", "csr/numpy", 0.1)          # 2nd: fire
        assert event is not None
        assert event.fingerprint == "fp-a"
        assert event.baseline_gflops > event.observed_gflops
        assert 0 < event.drop_fraction < 1
        after = get_registry().counter("perf.regressions",
                                       key="csr/numpy")
        assert after == before + 1
        # force-sampling armed for the offending matrix
        assert slo.should_force_sample("fp-a")
        assert not slo.should_force_sample("fp-other")

    def test_single_slow_sample_is_noise(self):
        wd = PerfWatchdog(min_samples=3, sustain=3)
        self._warm(wd, n=6)
        assert wd.observe("fp-a", "csr/numpy", 0.1) is None
        # recovery resets the streak
        for _ in range(5):
            assert wd.observe("fp-a", "csr/numpy", 1.0) is None
        assert wd.observe("fp-a", "csr/numpy", 0.1) is None
        assert wd.observe("fp-a", "csr/numpy", 0.1) is None

    def test_rebaseline_no_refire_at_degraded_rate(self):
        wd = PerfWatchdog(min_samples=3, sustain=2)
        self._warm(wd, n=5)
        wd.observe("fp-a", "csr/numpy", 0.1)
        assert wd.observe("fp-a", "csr/numpy", 0.1) is not None
        # steady at the degraded rate: no second event
        for _ in range(10):
            assert wd.observe("fp-a", "csr/numpy", 0.1) is None
        # a further drop fires again
        wd.observe("fp-a", "csr/numpy", 0.01)
        assert wd.observe("fp-a", "csr/numpy", 0.01) is not None
        assert len(wd.events) == 2

    def test_ignores_junk_rates(self):
        wd = PerfWatchdog(min_samples=1, sustain=1)
        assert wd.observe("fp", "k", 0.0) is None
        assert wd.observe("fp", "k", -1.0) is None
        assert wd.observe("fp", "k", math.nan) is None
        assert wd.observe("fp", "k", math.inf) is None

    def test_report_shape(self):
        wd = PerfWatchdog(min_samples=3, sustain=2)
        self._warm(wd, fp="fp-hi", rate=2.0, n=5)
        self._warm(wd, fp="fp-lo", rate=1.0, n=5)
        rpt = wd.report(top=1)
        assert set(rpt) >= {"regressions", "events",
                            "bottom_fractions", "top_fractions",
                            "baselines"}
        assert rpt["regressions"] == 0
        assert len(rpt["top_fractions"]) == 1
        fps = {r["fingerprint"] for r in rpt["bottom_fractions"]}
        assert fps <= {"fp-hi", "fp-lo"}
        key = "fp-hi:csr/numpy"
        assert rpt["baselines"][key]["samples"] >= 3
        assert rpt["baselines"][key]["mean_gflops"] == \
            pytest.approx(2.0)


class TestSampler:
    def test_captures_busy_thread(self, tmp_path):
        import threading

        stop = threading.Event()

        def busy_marker_fn():
            while not stop.is_set():
                sum(range(500))

        t = threading.Thread(target=busy_marker_fn, daemon=True)
        t.start()
        sampler = StackSampler(str(tmp_path / "p.stacks"),
                               interval_s=0.001)
        sampler.start()
        time.sleep(0.3)
        stop.set()
        sampler.stop()
        t.join(timeout=2)
        counts = sampler.counts()
        assert sampler.samples > 10
        assert any("busy_marker_fn" in stack for stack in counts)
        # flushed file parses back to the same aggregate
        text = (tmp_path / "p.stacks").read_text()
        assert parse_collapsed(text) == counts

    def test_render_parse_roundtrip(self):
        counts = {"a;b;c": 5, "a;d": 2}
        assert parse_collapsed(render_collapsed(counts)) == counts
        # torn/garbage lines are skipped
        assert parse_collapsed("a;b notanumber\nx;y 3\n") == {"x;y": 3}
        assert render_collapsed({}) == ""

    def test_collate_merges_shards(self, tmp_path):
        (tmp_path / "shard-0.stacks").write_text("a;b 3\nc 1\n")
        (tmp_path / "shard-1.stacks").write_text("a;b 2\nd 4\n")
        (tmp_path / "ignored.jsonl").write_text("{}\n")
        merged = collate_stacks(str(tmp_path))
        assert merged == {"a;b": 5, "c": 1, "d": 4}

    def test_collate_missing_dir(self, tmp_path):
        assert collate_stacks(str(tmp_path / "nope")) == {}


def _wait_for(pred, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.05)
    return pred()


class TestServeIntegration:
    """Acceptance criteria: sharded perf series, /v1/debug/perf, and a
    synthetic slowdown tripping the watchdog."""

    def test_sharded_request_yields_perf_series(self):
        mp = pytest.importorskip("multiprocessing")
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs the fork start method")
        from repro.serve.client import ServeClient

        client = ServeClient(shards=2, shard_threshold_bytes=1,
                             perf_watch=TEST_CEILINGS)
        try:
            coo = generate("FEM-Har", scale=0.1, seed=0)
            fp = client.register(coo).fingerprint
            x = np.random.default_rng(1).standard_normal(coo.shape[1])
            client.spmv(fp, x)

            def shard_series_arrived():
                snap = get_registry().snapshot()
                gf = [k for k in snap["histograms"]
                      if k.startswith("perf.gflops") and "shard=" in k]
                rf = [k for k in snap["histograms"]
                      if k.startswith("perf.roofline_fraction")
                      and "shard=" in k]
                return len(gf) >= 2 and len(rf) >= 2

            assert _wait_for(shard_series_arrived), \
                "per-shard perf.* series never reached the parent"
            # fractions are finite and sane
            snap = get_registry().snapshot()
            for k, h in snap["histograms"].items():
                if k.startswith("perf.roofline_fraction"):
                    assert 0 < h.max < math.inf
            # /metrics renders them
            from repro.observe import render_prometheus

            text = render_prometheus()
            assert "repro_perf_gflops_bucket{" in text
            assert "repro_perf_roofline_fraction_bucket{" in text
            # debug report carries the ceilings envelope + fractions
            rpt = client.perf_report()
            assert rpt["perf_watch"] is True
            assert rpt["ceilings"] == TEST_CEILINGS.to_json()
            assert rpt["host"]["n_cores"] >= 1
            assert "top_fractions" in rpt
        finally:
            client.close()

    def test_synthetic_slowdown_trips_watchdog(self, monkeypatch):
        from repro.serve import scheduler as sched_mod
        from repro.serve.client import ServeClient

        client = ServeClient(perf_watch=TEST_CEILINGS)
        try:
            wd = client.watchdog
            assert wd is not None
            wd.min_samples, wd.sustain = 3, 2
            coo = generate("FEM-Har", scale=0.05, seed=0)
            fp = client.register(coo).fingerprint
            x = np.random.default_rng(2).standard_normal(coo.shape[1])
            for _ in range(8):
                client.spmv(fp, x)
            assert not wd.events, "no regression before the slowdown"
            # sleep-injected kernel wrapper: ~50x slowdown
            real_spmv = sched_mod.spmv_backend

            def throttled(matrix, x, y=None, *, backend="numpy"):
                time.sleep(0.05)
                return real_spmv(matrix, x, y, backend=backend)

            monkeypatch.setattr(sched_mod, "spmv_backend", throttled)
            for _ in range(4):
                client.spmv(fp, x)
            assert wd.events, "sustained slowdown never fired"
            event = wd.events[-1]
            assert event.fingerprint == fp
            # the counter carries the format/backend key of the plan
            # that regressed (whatever the planner chose)
            assert get_registry().counter("perf.regressions",
                                          key=event.key) >= 1
            # force-sampling armed for the regressed matrix: either
            # unconsumed debt remains, or the requests that followed
            # the firing already consumed it (slo.forced_samples)
            armed = client.slo._force_debt.get(fp, 0) > 0
            consumed = get_registry().counter("slo.forced_samples") >= 1
            assert armed or consumed
            # and the debug report shows the event
            rpt = client.perf_report()
            assert rpt["regressions"] >= 1
            assert rpt["events"][-1]["fingerprint"] == fp
        finally:
            client.close()

    def test_profile_dir_collects_parent_stacks(self, tmp_path):
        from repro.observe.perf import sampler as sampler_mod
        from repro.serve.client import ServeClient

        profile_dir = tmp_path / "profiles"
        client = ServeClient(profile_dir=str(profile_dir))
        try:
            coo = generate("FEM-Har", scale=0.05, seed=0)
            fp = client.register(coo).fingerprint
            x = np.random.default_rng(3).standard_normal(coo.shape[1])
            for _ in range(20):
                client.spmv(fp, x)
            time.sleep(0.2)
        finally:
            client.close()
        # stop_sampler flushed the parent profile on close
        assert sampler_mod._ACTIVE is None
        files = os.listdir(profile_dir)
        assert "serve-parent.stacks" in files
        merged = collate_stacks(str(profile_dir))
        assert merged, "parent sampler captured nothing"
