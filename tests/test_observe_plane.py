"""The cross-process observability plane, unit by unit and end to end:
trace-context propagation, span ring files, delta flushing, SLO
accounting, and the full serve→dist merged span tree — including the
fault path where a respawned shard must rejoin metrics flushing."""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.observe import context, new_trace
from repro.observe.context import TraceContext, from_header
from repro.observe.flush import DeltaFlusher, diff_flat, merge_message
from repro.observe.hub import uninstall_hub
from repro.observe.metrics import MetricsRegistry, get_registry
from repro.observe.ring import SpanRing, collate, read_ring
from repro.observe.slo import SloTracker
from repro.observe.trace import SpanEvent

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method",
)


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_header_round_trip(self):
        ctx = new_trace(sampled=True)
        back = from_header(ctx.to_header())
        assert back == ctx
        off = TraceContext(ctx.trace_id, ctx.span_id, sampled=False)
        assert from_header(off.to_header()) == off

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "a-b", "a-b-c-d", "xyz-123-01",
        "deadbeef--01",
    ])
    def test_malformed_headers_are_none(self, header):
        assert from_header(header) is None

    def test_dict_round_trip(self):
        ctx = new_trace()
        assert context.from_dict(ctx.to_dict()) == ctx
        assert context.from_dict(None) is None
        assert context.from_dict({}) is None

    def test_child_keeps_trace_changes_span(self):
        ctx = new_trace()
        kid = ctx.child()
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id != ctx.span_id

    def test_use_installs_and_restores(self):
        assert context.current() is None
        ctx = new_trace()
        with context.use(ctx) as installed:
            assert installed is ctx
            assert context.current() is ctx
            with context.use(None):
                assert context.current() is None
            assert context.current() is ctx
        assert context.current() is None


# ----------------------------------------------------------------------
# Span ring files
# ----------------------------------------------------------------------
def _event(name: str, trace_id: str, span_id: str = "aa00bb11",
           parent_id: str = "") -> SpanEvent:
    return SpanEvent(
        name=name, start_us=1.0, duration_us=2.0, thread_id=0,
        depth=0, trace_id=trace_id, span_id=span_id,
        parent_id=parent_id, pid=os.getpid(), wall_us=123.0,
    )


class TestSpanRing:
    def test_append_read_round_trip(self, tmp_path):
        ring = SpanRing(tmp_path / "shard-0.jsonl")
        ring.append(_event("a", "t1", "s1"))
        ring.append(_event("b", "t2", "s2"))
        ring.close()
        events = read_ring(tmp_path / "shard-0.jsonl")
        assert [(e.name, e.trace_id) for e in events] == \
            [("a", "t1"), ("b", "t2")]

    def test_rotation_keeps_recent_spans(self, tmp_path):
        path = tmp_path / "shard-0.jsonl"
        ring = SpanRing(path, max_bytes=256)
        for i in range(50):
            ring.append(_event(f"span{i:03d}", "t", f"s{i:03d}"))
        ring.close()
        assert (tmp_path / "shard-0.jsonl.1").exists()
        names = [e.name for e in read_ring(path)]
        # The most recent span always survives; older ones age out.
        assert "span049" in names
        assert len(names) < 50

    def test_collate_filters_by_trace(self, tmp_path):
        for shard, trace in ((0, "tA"), (1, "tB")):
            ring = SpanRing(tmp_path / f"shard-{shard}.jsonl")
            ring.append(_event("compute", trace, f"s{shard}"))
            ring.close()
        assert len(collate(tmp_path)) == 2
        only_a = collate(tmp_path, trace_id="tA")
        assert [e.trace_id for e in only_a] == ["tA"]
        assert collate(tmp_path / "nonexistent") == []

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "shard-0.jsonl"
        ring = SpanRing(path)
        ring.append(_event("good", "t", "s"))
        ring.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"name": "torn half')
        events = read_ring(path)
        assert [e.name for e in events] == ["good"]


# ----------------------------------------------------------------------
# Delta flushing (child → parent registry)
# ----------------------------------------------------------------------
class TestDeltaFlush:
    def test_fork_baseline_is_never_reflushed(self):
        reg = MetricsRegistry()
        reg.inc("dist.child_computes", 100, shard=0)  # "inherited"
        recv, send = multiprocessing.Pipe(duplex=False)
        flusher = DeltaFlusher(send, reg, ident=0)
        assert not flusher.flush_once()     # nothing beyond baseline
        reg.inc("dist.child_computes", 3, shard=0)
        assert flusher.flush_once()
        kind, source, delta = recv.recv()
        assert (kind, source) == ("metrics", 0)
        assert delta["counters"]["dist.child_computes{shard=0}"] == 3

    def test_deltas_are_increments_not_totals(self):
        reg = MetricsRegistry()
        recv, send = multiprocessing.Pipe(duplex=False)
        flusher = DeltaFlusher(send, reg, ident=1)
        parent = MetricsRegistry()
        for _ in range(3):
            reg.inc("dist.child_computes", 2, shard=1)
            reg.observe("dist.child_compute_seconds", 0.5, shard=1)
            assert flusher.flush_once()
            assert merge_message(parent, recv.recv())
        snap = parent.snapshot()
        assert snap["counters"]["dist.child_computes{shard=1}"] == 6
        hist = snap["histograms"]["dist.child_compute_seconds{shard=1}"]
        assert hist.count == 3

    def test_merge_message_rejects_foreign_shapes(self):
        reg = MetricsRegistry()
        assert not merge_message(reg, ("heartbeat", 0, 1.0))
        assert not merge_message(reg, "noise")
        assert not merge_message(reg, ("metrics", 0, "not-a-dict"))

    def test_diff_flat_histogram_delta(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        prev = reg.snapshot_flat()
        reg.observe("h", 3.0)
        delta = diff_flat(reg.snapshot_flat(), prev)
        assert delta["hists"]["h"][0] == 1       # one new observation
        assert delta["hists"]["h"][1] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------
class TestSloTracker:
    def test_slow_request_sampled_and_armed(self):
        reg = MetricsRegistry()
        slo = SloTracker(slo_s=0.010, registry=reg, force_samples=2)
        assert not slo.record(op="spmv", fingerprint="fp",
                              total_s=0.002)
        assert slo.record(
            op="spmv", fingerprint="fp", total_s=0.5,
            phases={"queue": 0.4, "compute": 0.1}, trace_id="t1",
        )
        samples = slo.slow_samples()
        assert [s.trace_id for s in samples] == ["t1"]
        assert samples[0].to_json()["phases_ms"]["queue"] == 400.0
        # Two units of force-sampling debt, then the arm clears.
        assert slo.should_force_sample("fp")
        assert slo.should_force_sample("fp")
        assert not slo.should_force_sample("fp")
        assert not slo.should_force_sample("other")

    def test_phase_histograms_recorded(self):
        reg = MetricsRegistry()
        slo = SloTracker(registry=reg)
        slo.record(op="spmv", fingerprint="fp", total_s=0.004,
                   phases={"queue": 0.001, "compute": 0.003})
        snap = reg.snapshot()
        assert ("slo.phase_seconds{matrix=fp,op=spmv,phase=queue}"
                in snap["histograms"])
        assert "slo.request_seconds{op=spmv}" in snap["histograms"]

    def test_summary_digest(self):
        reg = MetricsRegistry()
        slo = SloTracker(registry=reg)
        for ms in (1, 2, 3):
            slo.record(op="spmv", fingerprint="fp", total_s=ms / 1e3)
        out = slo.summary()
        assert out["spmv"]["count"] == 3
        assert out["spmv"]["slow"] == 0


# ----------------------------------------------------------------------
# End to end: one request, one merged tree; faults rejoin the plane
# ----------------------------------------------------------------------
def _walk(nodes):
    for node in nodes:
        yield node
        yield from _walk(node["children"])


@needs_fork
class TestEndToEnd:
    def test_sharded_request_yields_one_merged_tree(self):
        from repro.serve.client import ServeClient
        from tests.conftest import random_coo

        coo = random_coo(150, 150, 0.05, seed=40)
        client = ServeClient(
            shards=2, shard_threshold_bytes=1, trace_sample_rate=1.0,
        )
        try:
            fp = client.register(coo).fingerprint
            x = np.random.default_rng(41).standard_normal(150)
            ctx = new_trace(sampled=True)
            with context.use(ctx):
                client.spmv(fp, x)
            tree = client.trace(ctx.trace_id)
            assert len(tree) == 1, f"one root expected: {tree}"
            spans = list(_walk(tree))
            names = {s["name"] for s in spans}
            assert "serve.scheduler.enqueue" in names
            assert "serve.worker_task" in names
            shard_ids = sorted(
                s["args"]["shard"] for s in spans
                if s["name"] == "shard.compute"
            )
            assert shard_ids == [0, 1], (
                f"both shards must contribute spans: {spans}"
            )
            assert len({s["pid"] for s in spans}) >= 3
        finally:
            client.close()
            uninstall_hub()

    def test_respawned_shard_rejoins_metrics_flushing(self):
        from repro.dist import RetryPolicy, ShardGroup
        from tests.conftest import random_coo

        reg = get_registry()
        group = ShardGroup(
            2, heartbeat_interval_s=0.05, compute_timeout_s=10.0,
            retry=RetryPolicy(max_retries=3, backoff_s=0.01),
        )
        try:
            coo = random_coo(150, 150, 0.05, seed=42)
            fp = group.register(coo)
            x = np.random.default_rng(43).standard_normal(150)

            def child_count(shard: int) -> float:
                return reg.counter("dist.child_computes", shard=shard)

            def wait_for(pred, what: str, timeout: float = 10.0):
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if pred():
                        return
                    time.sleep(0.05)
                pytest.fail(f"timed out waiting for {what}")

            group.spmv(fp, x)
            wait_for(lambda: child_count(1) >= 1,
                     "pre-kill telemetry from shard 1")
            before = child_count(1)

            os.kill(group.shard_pids()[1], signal.SIGKILL)
            # The next dispatch revives the shard; its fresh child must
            # re-attach to the telemetry plane and keep counting.
            group.spmv(fp, x)
            wait_for(lambda: child_count(1) > before,
                     "post-respawn telemetry from shard 1")
            from repro.formats import coo_to_csr
            assert np.array_equal(group.spmv(fp, x),
                                  coo_to_csr(coo).spmv(x))
        finally:
            group.close()
