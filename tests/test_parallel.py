"""Partitioning, NUMA assignment, segmented scan, native backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import COOMatrix, coo_to_csr
from repro.machines import PlacementPolicy, get_machine
from repro.parallel import (
    assign_numa,
    native_parallel_spmv,
    partition_cols_balanced,
    partition_rows_balanced,
    partition_rows_equal,
    segmented_scan_spmv,
)
from repro.parallel.partition import split_rows
from tests.conftest import random_coo


class TestRowPartition:
    def test_covers_all_rows(self, small_coo):
        n = min(4, max(1, small_coo.nrows))
        p = partition_rows_balanced(small_coo, n)
        assert p.bounds[0] == 0
        assert p.bounds[-1] == small_coo.nrows
        assert (np.diff(p.bounds) >= 0).all()

    def test_nnz_conserved(self, small_coo):
        n = min(4, max(1, small_coo.nrows))
        p = partition_rows_balanced(small_coo, n)
        assert p.nnz_per_part.sum() == small_coo.nnz_logical

    def test_balanced_beats_equal_on_skewed(self):
        # Put 90% of nonzeros in the first 10% of rows.
        rng = np.random.default_rng(0)
        heavy = rng.integers(0, 100, size=9000)
        light = rng.integers(100, 1000, size=1000)
        rows = np.concatenate([heavy, light])
        cols = rng.integers(0, 1000, size=10_000)
        coo = COOMatrix((1000, 1000), rows, cols,
                        rng.standard_normal(10_000))
        bal = partition_rows_balanced(coo, 4)
        eq = partition_rows_equal(coo, 4)
        assert bal.imbalance < eq.imbalance
        assert bal.imbalance < 1.3
        assert eq.imbalance > 2.0

    def test_equal_rows_sizes(self):
        coo = random_coo(103, 50, 0.1, seed=1)
        p = partition_rows_equal(coo, 4)
        sizes = np.diff(p.bounds)
        assert sizes.max() - sizes.min() <= 1

    def test_part_of_row(self):
        coo = random_coo(100, 50, 0.1, seed=2)
        p = partition_rows_balanced(coo, 3)
        parts = p.part_of_row(np.arange(100))
        assert parts.min() == 0 and parts.max() == 2
        assert (np.diff(parts) >= 0).all()

    def test_too_many_parts(self):
        coo = random_coo(3, 3, 0.5, seed=3)
        with pytest.raises(PartitionError):
            partition_rows_balanced(coo, 10)
        with pytest.raises(PartitionError):
            partition_rows_equal(coo, 0)

    def test_empty_matrix(self):
        coo = COOMatrix((0, 5), np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64), np.zeros(0))
        p = partition_rows_balanced(coo, 1)
        assert p.n_parts == 1
        assert p.ranges() == [(0, 0)]
        assert p.nnz_per_part.sum() == 0
        assert p.imbalance == 1.0

    def test_zero_nnz_matrix(self):
        coo = COOMatrix((12, 12), np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64), np.zeros(0))
        p = partition_rows_balanced(coo, 3)
        assert p.bounds[0] == 0 and p.bounds[-1] == 12
        assert (np.diff(p.bounds) >= 0).all()
        assert p.imbalance == 1.0

    def test_single_dense_row_bounds_balance(self):
        # One row holds every nonzero; a row is never split, so one
        # part gets all the load and imbalance == n_parts exactly.
        n = 4
        coo = COOMatrix((8, 100), [3] * 100, list(range(100)),
                        np.ones(100))
        p = partition_rows_balanced(coo, n)
        assert p.nnz_per_part.max() == 100
        assert p.imbalance == pytest.approx(float(n))

    def test_empty_leading_rows_monotonic_bounds(self):
        # All nonzeros at the bottom: naive cumulative cuts would
        # repeat 0; the monotonicity guard must keep bounds sorted and
        # covering [0, m].
        coo = COOMatrix((10, 10), [8, 8, 9, 9], [0, 1, 0, 1],
                        np.ones(4))
        p = partition_rows_balanced(coo, 4)
        assert (np.diff(p.bounds) >= 0).all()
        assert p.bounds[0] == 0 and p.bounds[-1] == 10
        assert p.nnz_per_part.sum() == 4

    def test_part_of_row_boundary_rows(self):
        coo = random_coo(100, 50, 0.1, seed=9)
        p = partition_rows_balanced(coo, 4)
        for i, (lo, hi) in enumerate(p.ranges()):
            if hi > lo:
                # First and last row of every range belong to part i.
                assert p.part_of_row(np.array([lo]))[0] == i
                assert p.part_of_row(np.array([hi - 1]))[0] == i

    def test_split_rows_reassembles(self, small_coo):
        n = min(3, max(1, small_coo.nrows))
        p = partition_rows_balanced(small_coo, n)
        slabs = split_rows(small_coo, p)
        dense = np.vstack([s.toarray() for s in slabs])
        np.testing.assert_allclose(dense, small_coo.toarray())

    def test_column_partition(self, small_coo):
        n = min(3, max(1, small_coo.ncols))
        p = partition_cols_balanced(small_coo, n)
        assert p.bounds[-1] == small_coo.ncols
        assert p.nnz_per_part.sum() == small_coo.nnz_logical


class TestNuma:
    def test_spread_uses_both_sockets(self):
        m = get_machine("AMD X2")
        a = assign_numa(m, 2, fill_order="spread")
        assert set(a.socket_of_thread) == {0, 1}

    def test_pack_fills_first_socket(self):
        m = get_machine("AMD X2")
        a = assign_numa(m, 2, fill_order="pack")
        assert set(a.socket_of_thread) == {0}

    def test_numa_aware_data_follows_thread(self):
        m = get_machine("Cell Blade")
        a = assign_numa(m, 16, policy=PlacementPolicy.NUMA_AWARE)
        np.testing.assert_array_equal(a.node_of_thread, a.socket_of_thread)

    def test_interleave_marks_all_nodes(self):
        m = get_machine("Cell Blade")
        a = assign_numa(m, 16, policy=PlacementPolicy.INTERLEAVE)
        assert (a.node_of_thread == -1).all()

    def test_single_node(self):
        m = get_machine("AMD X2")
        a = assign_numa(m, 4, policy=PlacementPolicy.SINGLE_NODE)
        assert (a.node_of_thread == 0).all()

    def test_niagara_cmt_slots(self):
        m = get_machine("Niagara")
        a = assign_numa(m, 32)
        assert a.slot_of_thread.max() == 3
        assert np.bincount(a.core_of_thread).tolist() == [4] * 8

    def test_too_many_threads(self):
        with pytest.raises(PartitionError):
            assign_numa(get_machine("AMD X2"), 5)

    def test_bad_fill_order(self):
        with pytest.raises(PartitionError):
            assign_numa(get_machine("AMD X2"), 2, fill_order="diagonal")


class TestSegmentedScan:
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 7, 16])
    def test_matches_reference(self, small_coo, rng, n_parts):
        csr = coo_to_csr(small_coo)
        x = rng.standard_normal(csr.ncols)
        expected = small_coo.toarray() @ x
        got = segmented_scan_spmv(csr, x, n_parts=n_parts)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_cut_inside_row(self, rng):
        # One dense row of 100 nonzeros, cut into 7 chunks: every cut
        # lands inside the row.
        coo = COOMatrix((3, 100), [1] * 100, list(range(100)),
                        rng.standard_normal(100))
        csr = coo_to_csr(coo)
        x = rng.standard_normal(100)
        got = segmented_scan_spmv(csr, x, n_parts=7)
        np.testing.assert_allclose(got, coo.toarray() @ x, rtol=1e-12)

    def test_accumulates_into_y(self, rng):
        coo = random_coo(20, 20, 0.2, seed=5)
        csr = coo_to_csr(coo)
        x = rng.standard_normal(20)
        y0 = rng.standard_normal(20)
        got = segmented_scan_spmv(csr, x, y0.copy(), n_parts=3)
        np.testing.assert_allclose(got, y0 + coo.toarray() @ x, rtol=1e-12)

    def test_bad_parts(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(PartitionError):
            segmented_scan_spmv(csr, np.ones(csr.ncols), n_parts=0)


class TestNative:
    def test_matches_serial_small(self, rng):
        # Small input degrades to serial — result must still be right.
        coo = random_coo(200, 200, 0.05, seed=6)
        csr = coo_to_csr(coo)
        x = rng.standard_normal(200)
        got = native_parallel_spmv(csr, x)
        np.testing.assert_allclose(got, csr.spmv(x), rtol=1e-12)

    def test_matches_serial_forced_parallel(self, rng):
        coo = random_coo(2000, 2000, 0.05, seed=7)
        csr = coo_to_csr(coo)
        x = rng.standard_normal(2000)
        got = native_parallel_spmv(csr, x, n_workers=3,
                                   min_nnz_per_worker=1)
        np.testing.assert_allclose(got, csr.spmv(x), rtol=1e-12)

    def test_wrong_x_shape(self, rng):
        coo = random_coo(50, 60, 0.1, seed=8)
        csr = coo_to_csr(coo)
        with pytest.raises(ValueError):
            native_parallel_spmv(csr, np.ones(59))

    def test_concurrent_calls_different_matrices(self, rng):
        # Regression: _WORK is module-global; before the install/fork
        # critical section took a lock, a concurrent call could fork
        # workers that snapshot the *other* call's matrix and vector.
        import threading

        a = random_coo(1500, 1500, 0.05, seed=10)
        b = random_coo(1200, 1300, 0.06, seed=11)
        csr_a, csr_b = coo_to_csr(a), coo_to_csr(b)
        xa = rng.standard_normal(1500)
        xb = rng.standard_normal(1300)
        want_a, want_b = csr_a.spmv(xa), csr_b.spmv(xb)

        results: dict[str, list] = {"a": [], "b": []}
        errors: list[BaseException] = []

        def run(key, csr, x, n_iters=4):
            try:
                for _ in range(n_iters):
                    results[key].append(
                        native_parallel_spmv(csr, x, n_workers=2,
                                             min_nnz_per_worker=1)
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=("a", csr_a, xa)),
            threading.Thread(target=run, args=("b", csr_b, xb)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got in results["a"]:
            np.testing.assert_allclose(got, want_a, rtol=1e-12)
        for got in results["b"]:
            np.testing.assert_allclose(got, want_b, rtol=1e-12)
