"""Column-partitioned SpMV tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.parallel import (
    column_parallel_spmv,
    column_partition_traffic_factor,
)
from repro.parallel.column import split_cols
from repro.parallel.partition import partition_cols_balanced
from tests.conftest import random_coo


class TestColumnParallel:
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 7])
    def test_matches_reference(self, rng, n_parts):
        coo = random_coo(60, 80, 0.08, seed=n_parts)
        x = rng.standard_normal(80)
        got = column_parallel_spmv(coo, x, n_parts=n_parts)
        np.testing.assert_allclose(got, coo.toarray() @ x, rtol=1e-10,
                                   atol=1e-12)

    def test_accumulates(self, rng):
        coo = random_coo(30, 30, 0.2, seed=9)
        x = rng.standard_normal(30)
        y0 = rng.standard_normal(30)
        got = column_parallel_spmv(coo, x, n_parts=3, y=y0.copy())
        np.testing.assert_allclose(got, y0 + coo.toarray() @ x,
                                   rtol=1e-9, atol=1e-9)

    def test_more_parts_than_cols_clamped(self, rng):
        coo = random_coo(10, 4, 0.5, seed=10)
        x = rng.standard_normal(4)
        got = column_parallel_spmv(coo, x, n_parts=16)
        np.testing.assert_allclose(got, coo.toarray() @ x, rtol=1e-10)

    def test_bad_parts(self, rng):
        coo = random_coo(5, 5, 0.5, seed=11)
        with pytest.raises(PartitionError):
            column_parallel_spmv(coo, np.ones(5), n_parts=0)

    def test_wrong_x(self, rng):
        coo = random_coo(5, 5, 0.5, seed=12)
        with pytest.raises(ValueError):
            column_parallel_spmv(coo, np.ones(6), n_parts=2)

    def test_split_cols_reassembles(self, rng):
        coo = random_coo(20, 50, 0.15, seed=13)
        part = partition_cols_balanced(coo, 4)
        slabs = split_cols(coo, part)
        dense = np.hstack([s.toarray() for s in slabs])
        np.testing.assert_allclose(dense, coo.toarray())

    def test_traffic_factor_grows(self):
        coo = random_coo(100, 100, 0.05, seed=14)
        f2 = column_partition_traffic_factor(coo, 2)
        f8 = column_partition_traffic_factor(coo, 8)
        assert 1.0 < f2 < f8
