"""Prefetch-distance tuning model (§4.1's 0..512-double sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machines import get_machine
from repro.simulator.memory import (
    per_core_demand_bw,
    prefetch_distance_effectiveness,
)


class TestEffectivenessCurve:
    def test_zero_distance_is_hw_only(self):
        amd = get_machine("AMD X2")
        assert prefetch_distance_effectiveness(amd, 0) == \
            amd.mem.hw_prefetch_effectiveness

    def test_monotone_ramp_to_optimum(self):
        amd = get_machine("AMD X2")
        effs = [prefetch_distance_effectiveness(amd, d)
                for d in (0, 8, 16, 32, 64)]
        assert all(b >= a - 1e-12 for a, b in zip(effs, effs[1:]))
        assert max(effs) > 0.95

    def test_deep_distance_decays_mildly(self):
        amd = get_machine("AMD X2")
        best = max(prefetch_distance_effectiveness(amd, d)
                   for d in range(0, 513, 16))
        at512 = prefetch_distance_effectiveness(amd, 512)
        assert at512 < best
        assert at512 > 0.85 * best

    def test_never_below_hw_baseline(self):
        amd = get_machine("AMD X2")
        base = amd.mem.hw_prefetch_effectiveness
        for d in (0, 1, 4, 512):
            assert prefetch_distance_effectiveness(amd, d) >= base

    def test_niagara_prefetch_useless(self):
        """§4.1: Niagara prefetch only reaches the L2 — no distance
        helps."""
        nia = get_machine("Niagara")
        for d in (0, 64, 512):
            assert prefetch_distance_effectiveness(nia, d) == 1.0

    def test_cell_dma_always_full(self):
        cell = get_machine("Cell (PS3)")
        assert prefetch_distance_effectiveness(cell, 0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            prefetch_distance_effectiveness(get_machine("AMD X2"), -1)


class TestDemandIntegration:
    def test_distance_sweep_shapes_bandwidth(self):
        amd = get_machine("AMD X2")
        bws = [
            per_core_demand_bw(amd, prefetch_distance_doubles=d)
            for d in (0, 16, 64, 256, 512)
        ]
        assert bws[0] < bws[2]            # ramp
        assert bws[2] == pytest.approx(max(bws), rel=0.11)

    def test_clovertown_insensitive(self):
        """§6.3: "rarely any benefit from software prefetching"."""
        clv = get_machine("Clovertown")
        b0 = per_core_demand_bw(clv, prefetch_distance_doubles=0)
        b64 = per_core_demand_bw(clv, prefetch_distance_doubles=64)
        assert b64 / b0 < 1.15

    def test_none_distance_means_full(self):
        amd = get_machine("AMD X2")
        assert per_core_demand_bw(amd) == per_core_demand_bw(
            amd, prefetch_distance_doubles=10_000_000
        ) or per_core_demand_bw(amd) >= per_core_demand_bw(
            amd, prefetch_distance_doubles=512
        )
