"""Serve tier over the sharded execution tier: threshold routing,
scheduler dispatch to shards, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observe.metrics import get_registry
from repro.serve import ServeClient
from tests.conftest import random_coo


@pytest.fixture
def client():
    c = ServeClient(
        "AMD X2", n_threads=1, n_workers=2,
        shards=2, shard_threshold_bytes=0,
        flush_deadline_s=0.001,
    )
    yield c
    c.close()


class TestThresholdRouting:
    def test_zero_threshold_shards_everything(self, client):
        coo = random_coo(100, 100, 0.05, seed=40)
        entry = client.register(coo)
        assert entry.sharded
        assert entry.shard_group is client.shard_group
        assert entry.describe()["sharded"]
        assert get_registry().counter("serve.matrices_sharded") >= 1

    def test_high_threshold_keeps_matrix_local(self):
        with ServeClient("AMD X2", n_threads=1, n_workers=2,
                         shards=2,
                         shard_threshold_bytes=1 << 40) as c:
            coo = random_coo(60, 60, 0.1, seed=41)
            entry = c.register(coo)
            assert not entry.sharded
            x = np.ones(60)
            np.testing.assert_allclose(
                c.spmv(entry.fingerprint, x), coo.toarray() @ x,
                rtol=1e-10,
            )

    def test_no_shards_by_default(self):
        with ServeClient("AMD X2", n_threads=1, n_workers=2) as c:
            assert c.shard_group is None
            assert c.describe()["shards"] is None


class TestShardedExecution:
    def test_spmv_matches_direct(self, client):
        coo = random_coo(150, 120, 0.05, seed=42)
        entry = client.register(coo)
        from repro.formats import coo_to_csr
        csr = coo_to_csr(coo)
        rng = np.random.default_rng(43)
        for _ in range(3):
            x = rng.standard_normal(120)
            # Row-path shards are bit-identical to serial CSR SpMV.
            assert np.array_equal(
                client.spmv(entry.fingerprint, x), csr.spmv(x)
            )
        assert get_registry().counter("serve.sharded_batches") >= 3

    def test_coalesced_batch_routes_through_shards(self, client):
        coo = random_coo(120, 100, 0.06, seed=44)
        entry = client.register(coo)
        reg = get_registry()
        before = reg.counter("dist.spmm_calls")
        rng = np.random.default_rng(45)
        xs = [rng.standard_normal(100) for _ in range(8)]
        futures = [client.submit(entry.fingerprint, x) for x in xs]
        ys = [f.result() for f in futures]
        from repro.formats import coo_to_csr
        csr = coo_to_csr(coo)
        for x, y in zip(xs, ys):
            assert np.array_equal(y, csr.spmv(x))
        # max_batch=8 coalesces the burst into at least one SpMM
        # executed on the shard group.
        assert reg.counter("dist.spmm_calls") >= before + 1

    def test_describe_reports_shards(self, client):
        d = client.describe()
        assert d["shards"] is not None
        assert d["shards"]["n_shards"] == 2

    def test_close_shuts_group_down(self):
        c = ServeClient("AMD X2", n_threads=1, n_workers=2,
                        shards=2, shard_threshold_bytes=0)
        coo = random_coo(50, 50, 0.1, seed=46)
        c.register(coo)
        group = c.shard_group
        c.close()
        assert group._closed
        assert group.describe()["matrices"] == 0


class TestEviction:
    def test_lru_eviction_unregisters_from_group(self):
        with ServeClient("AMD X2", n_threads=1, n_workers=2,
                         shards=2, shard_threshold_bytes=0,
                         capacity_bytes=1) as c:
            # capacity 1 byte: each new matrix evicts the previous one.
            a = random_coo(80, 80, 0.05, seed=47)
            b = random_coo(90, 90, 0.05, seed=48)
            ea = c.register(a)
            assert c.shard_group.describe()["matrices"] == 1
            c.register(b)
            assert ea.fingerprint not in c.registry
            assert c.shard_group.describe()["matrices"] == 1
