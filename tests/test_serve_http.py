"""HTTP front end: routes, admission control, metrics, drain."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ServeClient, start_server, stop_server
from tests.conftest import random_coo


def _url(httpd, path):
    return f"http://127.0.0.1:{httpd.port}{path}"


def get(httpd, path):
    with urllib.request.urlopen(_url(httpd, path), timeout=10) as r:
        return r.status, r.read().decode(), dict(r.headers)


def post(httpd, path, obj):
    req = urllib.request.Request(
        _url(httpd, path), data=json.dumps(obj).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as r:
        return r.status, json.loads(r.read())


@pytest.fixture
def served():
    client = ServeClient(machine="AMD X2", n_threads=1, max_batch=4,
                         flush_deadline_s=0.005)
    httpd = start_server(client, port=0)
    yield httpd, client
    stop_server(httpd)
    client.close()


def register_triplet(httpd, coo):
    return post(httpd, "/v1/matrices", {
        "shape": list(coo.shape),
        "row": coo.row.tolist(),
        "col": coo.col.tolist(),
        "val": coo.val.tolist(),
    })


class TestRoutes:
    def test_register_and_spmv(self, served, rng):
        httpd, _ = served
        coo = random_coo(60, 60, 0.1, seed=1)
        status, body = register_triplet(httpd, coo)
        assert status == 200
        assert body["nnz"] == coo.nnz_logical
        assert body["plan_cache_hit"] is False
        x = rng.standard_normal(60)
        status, result = post(httpd, "/v1/spmv", {
            "fingerprint": body["fingerprint"], "x": x.tolist(),
        })
        assert status == 200
        np.testing.assert_allclose(
            np.asarray(result["y"]), coo.toarray() @ x, rtol=1e-10
        )

    def test_register_by_generator_name(self, served):
        httpd, _ = served
        status, body = post(httpd, "/v1/matrices", {
            "generate": "Dense", "scale": 0.02, "seed": 0,
        })
        assert status == 200
        assert body["nnz"] > 0

    def test_healthz(self, served):
        httpd, _ = served
        coo = random_coo(30, 30, 0.1, seed=2)
        register_triplet(httpd, coo)
        status, text, _ = get(httpd, "/healthz")
        doc = json.loads(text)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["matrices"] == 1

    def test_metrics_exposition(self, served, rng):
        httpd, _ = served
        coo = random_coo(30, 30, 0.1, seed=3)
        _, body = register_triplet(httpd, coo)
        post(httpd, "/v1/spmv", {
            "fingerprint": body["fingerprint"],
            "x": rng.standard_normal(30).tolist(),
        })
        status, text, headers = get(httpd, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_serve_batches counter" in text
        assert "repro_serve_matrices_registered" in text
        assert "repro_serve_http_requests" in text


class TestErrors:
    def test_unknown_routes(self, served):
        httpd, _ = served
        with pytest.raises(urllib.error.HTTPError) as e:
            get(httpd, "/nope")
        assert e.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as e:
            post(httpd, "/v1/nope", {})
        assert e.value.code == 404

    def test_unknown_fingerprint_404(self, served):
        httpd, _ = served
        with pytest.raises(urllib.error.HTTPError) as e:
            post(httpd, "/v1/spmv",
                 {"fingerprint": "0" * 16, "x": [1.0]})
        assert e.value.code == 404

    def test_bad_body_400(self, served):
        httpd, _ = served
        with pytest.raises(urllib.error.HTTPError) as e:
            post(httpd, "/v1/matrices", {"shape": [2, 2]})
        assert e.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as e:
            post(httpd, "/v1/spmv", {"x": [1.0]})
        assert e.value.code == 400

    def test_invalid_json_400(self, served):
        httpd, _ = served
        req = urllib.request.Request(
            _url(httpd, "/v1/spmv"), data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as e:
            urllib.request.urlopen(req, timeout=10)
        assert e.value.code == 400

    def test_backpressure_429(self, rng):
        client = ServeClient(machine="AMD X2", n_threads=1,
                             max_queue=0, flush_deadline_s=30.0)
        httpd = start_server(client, port=0)
        try:
            coo = random_coo(20, 20, 0.2, seed=4)
            _, body = register_triplet(httpd, coo)
            with pytest.raises(urllib.error.HTTPError) as e:
                post(httpd, "/v1/spmv", {
                    "fingerprint": body["fingerprint"],
                    "x": rng.standard_normal(20).tolist(),
                })
            assert e.value.code == 429
            assert e.value.headers["Retry-After"] is not None
        finally:
            stop_server(httpd, drain=False)
            client.close()


class TestLifecycle:
    def test_stop_drains_cleanly(self, rng):
        client = ServeClient(machine="AMD X2", n_threads=1,
                             max_batch=16, flush_deadline_s=30.0)
        httpd = start_server(client, port=0)
        coo = random_coo(40, 40, 0.1, seed=5)
        _, body = register_triplet(httpd, coo)
        fut = client.submit(body["fingerprint"],
                            rng.standard_normal(40))
        assert client.scheduler.queued == 1
        stop_server(httpd)          # drains the pending partial batch
        assert fut.done()
        client.close()
        assert client.describe()["status"] == "closed"
