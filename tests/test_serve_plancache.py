"""Plan serialization and the on-disk tuned-plan cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import OptimizationLevel, SpmvEngine
from repro.core.plan import SpmvPlan
from repro.errors import ServeError
from repro.machines import get_machine
from repro.matrices import generate
from repro.observe.metrics import get_registry
from repro.serve import MatrixRegistry, PlanCache, plans_equal
from tests.conftest import random_coo

L = OptimizationLevel


@pytest.fixture
def engine():
    return SpmvEngine(get_machine("AMD X2"))


class TestPlanRoundTrip:
    @pytest.mark.parametrize(
        "level", [L.NAIVE, L.PF, L.PF_RB, L.PF_RB_CB]
    )
    def test_lossless_at_every_level(self, engine, level):
        coo = random_coo(300, 300, 0.03, seed=9, blocky=True)
        plan = engine.plan(coo, level=level, n_threads=2)
        back = SpmvPlan.from_dict(plan.to_dict())
        assert plans_equal(plan, back)

    def test_dict_is_json_serializable(self, engine):
        coo = generate("FEM-Har", scale=0.03, seed=0)
        plan = engine.plan(coo, n_threads=4)
        text = json.dumps(plan.to_dict())
        assert plans_equal(plan, SpmvPlan.from_dict(json.loads(text)))

    def test_restored_plan_materializes_identically(self, engine, rng):
        coo = random_coo(200, 160, 0.05, seed=3)
        plan = engine.plan(coo, n_threads=2)
        back = SpmvPlan.from_dict(plan.to_dict())
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_array_equal(
            plan.materialize(coo).spmv(x), back.materialize(coo).spmv(x)
        )

    def test_plans_equal_detects_difference(self, engine):
        coo = random_coo(100, 100, 0.05, seed=1)
        a = engine.plan(coo, n_threads=1)
        b = engine.plan(coo, n_threads=2)
        assert not plans_equal(a, b)
        assert plans_equal(a, engine.plan(coo, n_threads=1))


class TestPlanCacheStore:
    def test_store_then_load(self, engine, tmp_path):
        coo = random_coo(150, 150, 0.04, seed=2)
        plan = engine.plan(coo, n_threads=2)
        cache = PlanCache(tmp_path)
        fp = coo.content_fingerprint()
        path = cache.store(fp, plan)
        assert path.exists()
        loaded = cache.load(plan.machine.name, fp)
        assert loaded is not None
        assert plans_equal(plan, loaded)

    def test_miss_on_empty_cache(self, tmp_path):
        reg = get_registry()
        before = reg.counter("serve.plan_cache_miss")
        assert PlanCache(tmp_path).load("AMD X2", "0" * 16) is None
        assert reg.counter("serve.plan_cache_miss") == before + 1

    def test_version_tamper_is_stale(self, engine, tmp_path):
        coo = random_coo(80, 80, 0.05, seed=5)
        plan = engine.plan(coo, n_threads=1)
        cache = PlanCache(tmp_path)
        fp = coo.content_fingerprint()
        path = cache.store(fp, plan)
        envelope = json.loads(path.read_text())
        envelope["model_version"] = "0.0.0-ancient"
        path.write_text(json.dumps(envelope))
        reg = get_registry()
        before = reg.counter("serve.plan_cache_stale")
        assert cache.load(plan.machine.name, fp) is None
        assert reg.counter("serve.plan_cache_stale") == before + 1

    def test_corrupt_file_is_stale_not_fatal(self, engine, tmp_path):
        coo = random_coo(60, 60, 0.05, seed=6)
        plan = engine.plan(coo, n_threads=1)
        cache = PlanCache(tmp_path)
        fp = coo.content_fingerprint()
        path = cache.store(fp, plan)
        path.write_text("{not json")
        assert cache.load(plan.machine.name, fp) is None

    def test_bad_fingerprint_rejected(self, tmp_path):
        cache = PlanCache(tmp_path)
        for bad in ["", "../../etc/passwd", "a/b", "x.json"]:
            with pytest.raises(ServeError):
                cache.path_for("AMD X2", bad)

    def test_entries_and_clear(self, engine, tmp_path):
        coo = random_coo(90, 90, 0.05, seed=7)
        cache = PlanCache(tmp_path)
        cache.store(
            coo.content_fingerprint(), engine.plan(coo, n_threads=2)
        )
        rows = cache.entries()
        assert len(rows) == 1
        assert rows[0]["machine"] == "AMD X2"
        assert rows[0]["fresh"] is True
        assert rows[0]["n_threads"] == 2
        assert cache.clear() == 1
        assert cache.entries() == []


class TestRegistryCacheIntegration:
    def test_second_registry_hits_disk_cache(self, tmp_path, rng):
        """Acceptance: a second serve/tune of the same matrix on the
        same machine is a plan-cache hit, and the restored plan behaves
        identically."""
        coo = generate("FEM-Har", scale=0.03, seed=0)
        machine = get_machine("AMD X2")
        reg = get_registry()

        r1 = MatrixRegistry(machine, plan_cache=PlanCache(tmp_path))
        e1 = r1.register(coo)
        assert e1.from_plan_cache is False

        hits_before = reg.counter("serve.plan_cache_hit")
        r2 = MatrixRegistry(machine, plan_cache=PlanCache(tmp_path))
        e2 = r2.register(coo)
        assert e2.from_plan_cache is True
        assert reg.counter("serve.plan_cache_hit") == hits_before + 1
        assert plans_equal(e1.plan, e2.plan)
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_array_equal(e1.matrix.spmv(x),
                                      e2.matrix.spmv(x))

    def test_thread_mismatch_replans(self, tmp_path):
        coo = random_coo(200, 200, 0.04, seed=8)
        machine = get_machine("AMD X2")
        cache = PlanCache(tmp_path)
        MatrixRegistry(machine, n_threads=1,
                       plan_cache=cache).register(coo)
        reg = get_registry()
        before = reg.counter("serve.plan_cache_thread_mismatch")
        e = MatrixRegistry(machine, n_threads=2,
                           plan_cache=cache).register(coo)
        assert e.from_plan_cache is False
        assert e.plan.n_threads == 2
        assert reg.counter("serve.plan_cache_thread_mismatch") \
            == before + 1


class TestAutoplanProvenance:
    """Satellite: the envelope gained tuning wall-clock + margin via an
    optional ``autoplan`` key — older entries (without it) must still
    load, and provenance-bearing stores feed the training corpus."""

    def _provenance(self, features=(1.0, 2.0, 3.0), source="sweep"):
        from repro.autoplan.features import FEATURE_VERSION
        return {
            "source": source, "label": "csr", "fmt": "csr-1x1-16bit",
            "confidence": 0.0, "weight": 1.4, "tuning_seconds": 0.21,
            "features": list(features),
            "feature_version": FEATURE_VERSION,
            "n_threads": 2, "shards": 0,
        }

    def test_envelope_without_autoplan_key_still_loads(
        self, engine, tmp_path,
    ):
        """Entries written before the autoplan fields existed load."""
        coo = random_coo(120, 120, 0.04, seed=11)
        plan = engine.plan(coo, n_threads=2)
        cache = PlanCache(tmp_path)
        fp = coo.content_fingerprint()
        path = cache.store(fp, plan)
        envelope = json.loads(path.read_text())
        envelope.pop("autoplan", None)   # simulate a pre-autoplan entry
        path.write_text(json.dumps(envelope))
        loaded = cache.load(plan.machine.name, fp)
        assert loaded is not None
        assert plans_equal(plan, loaded)

    def test_store_with_provenance_records_envelope_fields(
        self, engine, tmp_path,
    ):
        coo = random_coo(100, 100, 0.05, seed=12)
        plan = engine.plan(coo, n_threads=1)
        cache = PlanCache(tmp_path)
        path = cache.store(coo.content_fingerprint(), plan,
                           autoplan=self._provenance())
        envelope = json.loads(path.read_text())
        assert envelope["autoplan"]["tuning_seconds"] == 0.21
        assert envelope["autoplan"]["weight"] == 1.4

    def test_sweep_store_feeds_attached_corpus(self, engine, tmp_path):
        from repro.autoplan.corpus import PlanCorpus
        corpus = PlanCorpus(tmp_path / "corpus.jsonl")
        cache = PlanCache(tmp_path / "plans", corpus=corpus)
        coo = random_coo(100, 100, 0.05, seed=13)
        cache.store(coo.content_fingerprint(),
                    engine.plan(coo, n_threads=1),
                    autoplan=self._provenance())
        samples = corpus.load()
        assert len(samples) == 1
        assert samples[0].label == "csr"
        assert samples[0].tuning_seconds == 0.21

    def test_predicted_store_does_not_feed_corpus(
        self, engine, tmp_path,
    ):
        """Predictions must not train on themselves."""
        from repro.autoplan.corpus import PlanCorpus
        corpus = PlanCorpus(tmp_path / "corpus.jsonl")
        cache = PlanCache(tmp_path / "plans", corpus=corpus)
        coo = random_coo(100, 100, 0.05, seed=14)
        cache.store(coo.content_fingerprint(),
                    engine.plan(coo, n_threads=1),
                    autoplan=self._provenance(source="predict"))
        assert len(corpus.load()) == 0

    def test_export_corpus_round_trips(self, engine, tmp_path):
        from repro.autoplan.corpus import PlanCorpus
        cache = PlanCache(tmp_path / "plans")
        fps = []
        for seed in (15, 16):
            coo = random_coo(90, 90, 0.05, seed=seed)
            fp = coo.content_fingerprint()
            fps.append(fp)
            cache.store(fp, engine.plan(coo, n_threads=1),
                        autoplan=self._provenance())
        # one legacy entry without provenance: skipped, not fatal
        coo = random_coo(50, 50, 0.05, seed=17)
        cache.store(coo.content_fingerprint(),
                    engine.plan(coo, n_threads=1))
        out = tmp_path / "exported.jsonl"
        assert cache.export_corpus(out) == 2
        samples = PlanCorpus(out).load()
        assert sorted(s.fingerprint for s in samples) == sorted(fps)
