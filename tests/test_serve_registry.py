"""Matrix registry: fingerprints, LRU eviction, idempotent register."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.machines import get_machine
from repro.observe.metrics import get_registry
from repro.serve import MatrixRegistry
from tests.conftest import random_coo


@pytest.fixture
def machine():
    return get_machine("AMD X2")


class TestFingerprint:
    def test_stable_across_instances(self):
        a = random_coo(50, 50, 0.1, seed=1)
        b = random_coo(50, 50, 0.1, seed=1)
        assert a.content_fingerprint() == b.content_fingerprint()

    def test_sensitive_to_values(self):
        a = random_coo(50, 50, 0.1, seed=1)
        val = a.val.copy()
        val[0] += 1.0
        from repro.formats import COOMatrix

        b = COOMatrix(a.shape, a.row, a.col, val)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_sensitive_to_shape(self):
        from repro.formats import COOMatrix

        a = COOMatrix((3, 3), [0], [0], [1.0])
        b = COOMatrix((3, 4), [0], [0], [1.0])
        assert a.content_fingerprint() != b.content_fingerprint()


class TestRegister:
    def test_register_and_get(self, machine, rng):
        r = MatrixRegistry(machine, n_threads=2)
        coo = random_coo(120, 120, 0.05, seed=2)
        entry = r.register(coo)
        assert entry.fingerprint in r
        assert r.get(entry.fingerprint) is entry
        x = rng.standard_normal(coo.ncols)
        np.testing.assert_allclose(
            entry.matrix.spmv(x), coo.toarray() @ x, rtol=1e-10
        )

    def test_register_is_idempotent(self, machine):
        r = MatrixRegistry(machine, n_threads=1)
        coo = random_coo(80, 80, 0.05, seed=3)
        reg = get_registry()
        before = reg.counter("serve.registry_rehits")
        e1 = r.register(coo)
        e2 = r.register(coo)
        assert e1 is e2
        assert len(r) == 1
        assert reg.counter("serve.registry_rehits") == before + 1

    def test_unknown_fingerprint(self, machine):
        r = MatrixRegistry(machine)
        with pytest.raises(ServeError, match="unknown matrix"):
            r.get("deadbeef00000000")

    def test_tiny_matrix_clamps_threads(self, machine):
        from repro.formats import COOMatrix

        r = MatrixRegistry(machine, n_threads=machine.n_threads)
        coo = COOMatrix((2, 2), [0, 1], [0, 1], [1.0, 2.0])
        entry = r.register(coo)
        assert entry.plan.n_threads <= 2

    def test_get_tracks_hits(self, machine):
        r = MatrixRegistry(machine, n_threads=1)
        entry = r.register(random_coo(40, 40, 0.1, seed=4))
        assert entry.hits == 0
        r.get(entry.fingerprint)
        r.get(entry.fingerprint)
        assert entry.hits == 2


class TestLRUEviction:
    def test_capacity_evicts_lru(self, machine):
        r0 = MatrixRegistry(machine, n_threads=1)
        mats = [random_coo(150, 150, 0.05, seed=s) for s in (10, 11, 12)]
        sizes = [r0.register(m).footprint_bytes for m in mats]

        # Room for roughly two of the three matrices.
        cap = sizes[1] + sizes[2] + sizes[0] // 2
        r = MatrixRegistry(machine, n_threads=1, capacity_bytes=cap)
        reg = get_registry()
        before = reg.counter("serve.registry_evictions")
        fps = [r.register(m).fingerprint for m in mats]
        assert reg.counter("serve.registry_evictions") > before
        assert fps[0] not in r          # oldest evicted
        assert fps[2] in r              # newest survives
        assert r.total_bytes <= cap

    def test_get_refreshes_lru_position(self, machine):
        mats = [random_coo(150, 150, 0.05, seed=s) for s in (20, 21, 22)]
        r0 = MatrixRegistry(machine, n_threads=1)
        sizes = [r0.register(m).footprint_bytes for m in mats]
        cap = sizes[0] + sizes[1] + sizes[2] // 2
        r = MatrixRegistry(machine, n_threads=1, capacity_bytes=cap)
        fp0 = r.register(mats[0]).fingerprint
        fp1 = r.register(mats[1]).fingerprint
        r.get(fp0)                      # touch: now fp1 is the LRU
        fp2 = r.register(mats[2]).fingerprint
        assert fp1 not in r
        assert fp0 in r and fp2 in r

    def test_describe(self, machine):
        r = MatrixRegistry(machine, n_threads=1, capacity_bytes=10**9)
        r.register(random_coo(60, 60, 0.1, seed=30))
        d = r.describe()
        assert d["machine"] == "AMD X2"
        assert d["matrices"] == 1
        assert d["total_bytes"] == d["entries"][0]["footprint_bytes"]
