"""Scheduler: coalescing, deadlines, admission control, worker pool."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ServeAdmissionError, ServeError
from repro.machines import get_machine
from repro.observe.metrics import get_registry
from repro.serve import BatchScheduler, MatrixRegistry, WorkerPool
from repro.serve.registry import RegistryEntry
from tests.conftest import random_coo


@pytest.fixture
def entry():
    r = MatrixRegistry(get_machine("AMD X2"), n_threads=2)
    return r.register(random_coo(200, 200, 0.04, seed=1))


def make_scheduler(**kw):
    pool = WorkerPool(2)
    sched = BatchScheduler(pool, **kw)
    return pool, sched


class TestCoalescing:
    def test_n_requests_one_kernel(self, entry, rng):
        """Acceptance: N concurrent requests for one matrix produce
        fewer than N kernel invocations (exactly one full batch)."""
        n = 4
        pool, sched = make_scheduler(max_batch=n, flush_deadline_s=30.0)
        try:
            reg = get_registry()
            k0 = reg.counter("serve.kernel_invocations")
            b0 = reg.counter("serve.batched_requests")
            xs = [rng.standard_normal(entry.ncols) for _ in range(n)]
            futs = [sched.submit(entry, x) for x in xs]
            ys = [f.result(timeout=10) for f in futs]
            assert reg.counter("serve.kernel_invocations") == k0 + 1
            assert reg.counter("serve.batched_requests") == b0 + n
            for x, y in zip(xs, ys):
                np.testing.assert_allclose(y, entry.matrix.spmv(x),
                                           rtol=1e-10, atol=1e-12)
        finally:
            sched.close()
            pool.shutdown()

    def test_batch_size_histogram(self, entry, rng):
        pool, sched = make_scheduler(max_batch=3, flush_deadline_s=30.0)
        try:
            h0 = get_registry().histogram("serve.batch_size").count
            futs = [sched.submit(entry, rng.standard_normal(entry.ncols))
                    for _ in range(3)]
            [f.result(timeout=10) for f in futs]
            h = get_registry().histogram("serve.batch_size")
            assert h.count == h0 + 1
            assert h.max >= 3
        finally:
            sched.close()
            pool.shutdown()

    def test_single_request_is_exact(self, entry, rng):
        """A lone request runs the plain spmv kernel: bit-for-bit."""
        pool, sched = make_scheduler(max_batch=8,
                                     flush_deadline_s=0.001)
        try:
            x = rng.standard_normal(entry.ncols)
            y = sched.submit(entry, x).result(timeout=10)
            np.testing.assert_array_equal(y, entry.matrix.spmv(x))
        finally:
            sched.close()
            pool.shutdown()


class TestDeadlineFlush:
    def test_partial_batch_flushes_on_deadline(self, entry, rng):
        pool, sched = make_scheduler(max_batch=64,
                                     flush_deadline_s=0.005)
        try:
            futs = [sched.submit(entry, rng.standard_normal(entry.ncols))
                    for _ in range(2)]
            ys = [f.result(timeout=10) for f in futs]
            assert all(y.shape == (entry.nrows,) for y in ys)
        finally:
            sched.close()
            pool.shutdown()

    def test_explicit_flush(self, entry, rng):
        pool, sched = make_scheduler(max_batch=64,
                                     flush_deadline_s=30.0)
        try:
            fut = sched.submit(entry, rng.standard_normal(entry.ncols))
            assert sched.queued == 1
            assert sched.flush() == 1
            fut.result(timeout=10)
            sched.drain()
            assert sched.queued == 0
        finally:
            sched.close()
            pool.shutdown()


class TestAdmission:
    def test_full_queue_rejects(self, entry, rng):
        pool, sched = make_scheduler(max_batch=64,
                                     flush_deadline_s=30.0,
                                     max_queue=0)
        try:
            reg = get_registry()
            r0 = reg.counter("serve.rejected")
            with pytest.raises(ServeAdmissionError):
                sched.submit(entry, rng.standard_normal(entry.ncols))
            assert reg.counter("serve.rejected") == r0 + 1
        finally:
            sched.close()
            pool.shutdown()

    def test_wrong_shape_rejected(self, entry):
        pool, sched = make_scheduler()
        try:
            with pytest.raises(ServeError, match="shape"):
                sched.submit(entry, np.ones(entry.ncols + 1))
        finally:
            sched.close()
            pool.shutdown()

    def test_closed_scheduler_rejects(self, entry, rng):
        pool, sched = make_scheduler()
        sched.close()
        with pytest.raises(ServeError, match="closed"):
            sched.submit(entry, rng.standard_normal(entry.ncols))
        pool.shutdown()


class TestFailureRelay:
    def test_kernel_exception_reaches_every_future(self):
        class BrokenMatrix:
            def spmv(self, x, y=None):
                raise RuntimeError("kernel exploded")

        broken = RegistryEntry(
            fingerprint="broken", shape=(3, 3), nnz=0, plan=None,
            matrix=BrokenMatrix(), footprint_bytes=0,
            from_plan_cache=False,
        )
        pool, sched = make_scheduler(max_batch=1)
        try:
            fut = sched.submit(broken, np.ones(3))
            with pytest.raises(RuntimeError, match="exploded"):
                fut.result(timeout=10)
        finally:
            sched.close()
            pool.shutdown()


class TestWorkerPool:
    def test_submit_and_metrics(self):
        reg = get_registry()
        before = sum(reg.counter("serve.worker_tasks", worker=w)
                     for w in range(2))
        pool = WorkerPool(2, name="t")
        try:
            results = [pool.submit(lambda i=i: i * i) for i in range(8)]
            assert sorted(f.result(timeout=10) for f in results) \
                == [i * i for i in range(8)]
            pool.drain()
            total = sum(reg.counter("serve.worker_tasks", worker=w)
                        for w in range(2))
            assert total == before + 8
        finally:
            pool.shutdown()

    def test_drain_waits_for_queue(self):
        pool = WorkerPool(1)
        done = threading.Event()

        def slow():
            done.wait(5.0)
            return 1

        try:
            fut = pool.submit(slow)
            done.set()
            pool.drain()
            assert fut.result(timeout=1) == 1
        finally:
            pool.shutdown()

    def test_shutdown_idempotent(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()
