"""Acceptance: solvers driven through the serve client match the
direct-library path — CG and the power method bit-for-bit, PageRank to
floating-point tolerance (its default path uses plain CSR, the served
path the tuned format)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpmvEngine
from repro.machines import get_machine
from repro.matrices import generate
from repro.serve import ServeClient
from repro.solvers import (
    conjugate_gradient,
    pagerank,
    power_method,
    transition_matrix,
)
from tests.conftest import random_coo
from tests.test_solvers import spd_matrix

THREADS = 2


@pytest.fixture
def client():
    # max_batch=1: a sequential solver issues dependent matvecs one at
    # a time; unit batches take the exact spmv kernel path.
    with ServeClient(machine="AMD X2", n_threads=THREADS,
                     max_batch=1) as c:
        yield c


def direct_matrix(coo):
    """The library path's materialization — same plan the serve
    registry computes (planning is deterministic in (matrix, machine,
    threads)), hence bit-identical kernels."""
    engine = SpmvEngine(get_machine("AMD X2"))
    return engine.plan(coo, n_threads=THREADS).materialize(coo)


class TestCGThroughServe:
    def test_bit_for_bit_vs_direct(self, client, rng):
        a = spd_matrix(80, seed=1)
        b = rng.standard_normal(80)
        op = client.operator(client.register(a).fingerprint)
        served = conjugate_gradient(op, b, tol=1e-10)
        direct = conjugate_gradient(direct_matrix(a), b, tol=1e-10)
        assert served.converged and direct.converged
        assert served.iterations == direct.iterations
        np.testing.assert_array_equal(served.x, direct.x)
        np.testing.assert_array_equal(
            np.asarray(served.residual_history),
            np.asarray(direct.residual_history),
        )

    def test_solution_is_correct(self, client, rng):
        a = spd_matrix(60, seed=2)
        x_true = rng.standard_normal(60)
        b = a.toarray() @ x_true
        op = client.operator(client.register(a).fingerprint)
        res = conjugate_gradient(op, b, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6)


class TestPowerMethodThroughServe:
    def test_bit_for_bit_vs_direct(self, client):
        a = spd_matrix(50, seed=3)
        op = client.operator(client.register(a).fingerprint)
        lam_s, v_s, it_s = power_method(op, seed=7)
        lam_d, v_d, it_d = power_method(direct_matrix(a), seed=7)
        assert it_s == it_d
        assert lam_s == lam_d
        np.testing.assert_array_equal(v_s, v_d)


class TestPageRankThroughServe:
    def test_operator_hook_matches_default(self, client):
        links = generate("Webbase", scale=0.03, seed=1)
        scores_default, it_default = pagerank(links)
        pt = transition_matrix(links)
        op = client.operator(client.register(pt).fingerprint)
        scores_served, it_served = pagerank(links, operator=op)
        assert it_served == it_default
        np.testing.assert_allclose(scores_served, scores_default,
                                   rtol=1e-9, atol=1e-12)
        assert scores_served.sum() == pytest.approx(1.0)

    def test_transition_matrix_columns_stochastic(self):
        links = random_coo(40, 40, 0.1, seed=4)
        pt = transition_matrix(links)
        dense = pt.toarray()
        col_sums = dense.sum(axis=0)
        outdeg = np.abs(links.toarray()).sum(axis=1)
        np.testing.assert_allclose(
            col_sums[outdeg > 0], 1.0, rtol=1e-12
        )
        assert np.all(col_sums[outdeg == 0] == 0)
