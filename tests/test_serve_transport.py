"""Transport-layer contracts after the server split.

The satellite fix under test: an oversized ``Content-Length`` must be
rejected with 413 *before* the body is read — the old handler slurped
``rfile.read()`` first and size-checked after, so a hostile client
could make the server buffer an arbitrary body.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.serve import start_server, stop_server
from repro.serve.client import ServeClient
from repro.serve.transport import MAX_BODY_BYTES

from tests.conftest import random_coo


@pytest.fixture
def served():
    client = ServeClient("AMD X2", n_threads=1, max_batch=2)
    httpd = start_server(client, port=0)
    yield httpd
    stop_server(httpd)
    client.close()


def _conn(httpd):
    return http.client.HTTPConnection("127.0.0.1", httpd.port,
                                      timeout=30)


def test_oversized_content_length_rejected_before_read(served):
    """Declare a huge body but send only a sliver: the server must
    answer 413 from the header alone, never blocking on the body."""
    conn = _conn(served)
    conn.putrequest("POST", "/v1/spmv")
    conn.putheader("Content-Type", "application/json")
    conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
    conn.endheaders()
    conn.send(b"{")   # a full body never arrives
    resp = conn.getresponse()
    assert resp.status == 413
    body = json.loads(resp.read())
    assert "exceeds" in body["error"]
    conn.close()


def test_missing_content_length_is_400(served):
    conn = _conn(served)
    conn.putrequest("POST", "/v1/spmv")
    conn.putheader("Content-Type", "application/json")
    conn.endheaders()
    resp = conn.getresponse()
    assert resp.status == 400
    conn.close()


def test_malformed_content_length_is_400(served):
    conn = _conn(served)
    conn.putrequest("POST", "/v1/spmv")
    conn.putheader("Content-Length", "banana")
    conn.endheaders()
    resp = conn.getresponse()
    # a non-numeric length is treated as invalid, not as zero
    assert resp.status in (400, 413)
    conn.close()


def test_normal_request_still_works(served, rng):
    coo = random_coo(20, 20, 0.15, seed=21)
    fp = served.client.register(coo).fingerprint
    x = rng.standard_normal(20)
    conn = _conn(served)
    body = json.dumps({"fingerprint": fp, "x": x.tolist()}).encode()
    conn.request("POST", "/v1/spmv", body,
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    assert resp.status == 200
    y = np.asarray(json.loads(resp.read())["y"])
    assert np.array_equal(y, served.client.spmv(fp, x))
    conn.close()


def test_debug_spans_route(served, rng):
    """The flat span export a cluster router merges from."""
    from repro.observe import context as _context

    coo = random_coo(20, 20, 0.15, seed=22)
    fp = served.client.register(coo).fingerprint
    ctx = _context.new_trace(sampled=True)
    with _context.use(ctx):
        served.client.spmv(fp, rng.standard_normal(20))

    conn = _conn(served)
    conn.request("GET", f"/v1/debug/spans/{ctx.trace_id}")
    resp = conn.getresponse()
    assert resp.status == 200
    events = json.loads(resp.read())["events"]
    assert events
    assert all(e["trace_id"] == ctx.trace_id for e in events)
    assert {"serve.request"} <= {e["name"] for e in events}
    conn.close()


def test_server_module_reexports_for_compat():
    """Old import sites keep working after the transport/routes split."""
    from repro.serve import server

    assert server._MAX_BODY_BYTES == MAX_BODY_BYTES
    for name in ("Request", "Response", "Router", "ServeHTTPServer",
                 "start_server", "stop_server", "MAX_BODY_BYTES"):
        assert hasattr(server, name), name
