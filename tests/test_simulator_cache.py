"""Exact cache simulator + analytic traffic model cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machines.model import CacheLevel
from repro.simulator.cache import (
    CacheSim,
    simulate_access_stream,
    spmv_source_vector_misses,
)
from repro.simulator.cache_analytic import unique_lines, vector_traffic

TINY = CacheLevel("T", 1024, 64, 2, 1.0)       # 16 lines, 2-way
BIG = CacheLevel("B", 64 * 1024, 64, 8, 1.0)   # plenty


class TestCacheSim:
    def test_first_access_misses(self):
        sim = CacheSim(TINY)
        assert sim.access(0) is False
        assert sim.stats.misses == 1

    def test_reuse_hits(self):
        sim = CacheSim(TINY)
        sim.access(0)
        assert sim.access(8) is True  # same 64B line
        assert sim.stats.hits == 1

    def test_lru_eviction(self):
        sim = CacheSim(TINY)
        # Three lines mapping to the same set of a 2-way cache:
        # set count = 1024/64/2 = 8, stride of 8 lines hits one set.
        a, b, c = 0, 8 * 64, 16 * 64
        sim.access(a); sim.access(b); sim.access(c)  # evicts a
        assert sim.access(a) is False
        assert sim.stats.evictions >= 1

    def test_lru_order_respected(self):
        sim = CacheSim(TINY)
        a, b, c = 0, 8 * 64, 16 * 64
        sim.access(a); sim.access(b)
        sim.access(a)          # a becomes MRU
        sim.access(c)          # evicts b, not a
        assert sim.access(a) is True
        assert sim.access(b) is False

    def test_stream_compulsory_only(self):
        # Streaming through a big cache: one miss per line.
        addrs = np.arange(0, 8192, 8)
        stats = simulate_access_stream(BIG, addrs)
        assert stats.misses == 8192 // 64
        assert stats.accesses == len(addrs)

    def test_misses_bounded_by_accesses(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 100_000, 5000) * 8
        stats = simulate_access_stream(TINY, addrs)
        assert 0 < stats.misses <= stats.accesses

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            simulate_access_stream(TINY, np.array([-8]))

    def test_reset(self):
        sim = CacheSim(TINY)
        sim.access(0)
        sim.reset()
        assert sim.stats.accesses == 0
        assert sim.resident_lines() == 0

    def test_miss_bytes(self):
        stats = simulate_access_stream(BIG, np.arange(0, 640, 8))
        assert stats.miss_bytes == stats.misses * 64


class TestAnalyticModel:
    def test_unique_lines(self):
        # 8 doubles per 64B line: indices 0..15 span 2 lines.
        assert unique_lines(np.arange(16), 64) == 2
        assert unique_lines(np.array([]), 64) == 0

    def test_fits_in_cache_compulsory_only(self):
        cols = np.tile(np.arange(64), 10)  # heavy reuse, tiny span
        vt = vector_traffic(cols, n_rows_touched=10, cache=BIG,
                            x_span_elems=64)
        assert vt.x_bytes == vt.x_unique_lines * 64

    def test_overflow_charges_capacity(self):
        rng = np.random.default_rng(1)
        span = 100_000
        cols = rng.integers(0, span, 20_000)
        vt_small = vector_traffic(cols, 100, TINY, x_span_elems=span)
        vt_big = vector_traffic(cols, 100, BIG, x_span_elems=span)
        assert vt_small.x_bytes > vt_big.x_bytes

    def test_y_write_allocate_doubles(self):
        cols = np.arange(100)
        a = vector_traffic(cols, 1000, BIG, x_span_elems=100,
                           write_allocate=True)
        b = vector_traffic(cols, 1000, BIG, x_span_elems=100,
                           write_allocate=False)
        assert a.y_bytes == pytest.approx(2 * b.y_bytes)

    def test_local_store_charges_span(self):
        cols = np.array([0, 5000])
        vt = vector_traffic(cols, 10, None, x_span_elems=8192)
        assert vt.x_bytes == 8192 * 8

    def test_against_exact_simulator(self):
        """Analytic x-traffic within 2x of the exact simulator across
        regimes (it is a bound-flavored estimate, not a clone)."""
        rng = np.random.default_rng(2)
        for span, n_acc in [(512, 5000), (8192, 5000), (65536, 20000)]:
            cols = rng.integers(0, span, n_acc)
            exact = spmv_source_vector_misses(TINY, cols).misses * 64
            model = vector_traffic(cols, 1, TINY,
                                   x_span_elems=span).x_bytes
            assert model <= exact * 2.0
            assert model >= exact * 0.3

    def test_analytic_compulsory_floor(self):
        rng = np.random.default_rng(3)
        cols = rng.integers(0, 4096, 3000)
        vt = vector_traffic(cols, 1, TINY, x_span_elems=4096)
        assert vt.x_bytes >= vt.x_unique_lines * 64
