"""Kernel-cost model tests, anchored to the paper's Niagara arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.machines import get_machine
from repro.simulator.cpu import (
    KernelVariant,
    kernel_cycles,
    naive_csr_variant,
    optimized_variant,
)


def csr_costs(core, nnz, rows, variant):
    return kernel_cycles(
        core, format_name="csr", r=1, c=1, ntiles=nnz, nnz_stored=nnz,
        n_segments=rows, variant=variant,
    )


class TestNiagaraAnchor:
    """§6.1: ~10 cycles of instruction execution plus ~10 cycles of
    multiply latency per naive 1x1 CSR nonzero on Niagara."""

    def test_naive_cycles_per_nonzero(self):
        core = get_machine("Niagara").core
        nnz, rows = 10_000, 200  # 50 nnz/row
        costs = csr_costs(core, nnz, rows, naive_csr_variant())
        per_nnz = costs.total_cycles / nnz
        assert 14 <= per_nnz <= 24  # ~10 issue + ~10 stall

    def test_pipelining_removes_stall(self):
        core = get_machine("Niagara").core
        naive = csr_costs(core, 10_000, 200, naive_csr_variant())
        opt = csr_costs(core, 10_000, 200, optimized_variant(core))
        assert opt.stall_cycles == 0
        assert naive.stall_cycles == pytest.approx(10.0 * 10_000)
        assert opt.total_cycles < naive.total_cycles


class TestVariants:
    def test_simd_reduces_issue_on_x86(self):
        core = get_machine("Clovertown").core
        scalar = kernel_cycles(core, format_name="bcsr", r=2, c=2,
                               ntiles=1000, nnz_stored=4000,
                               n_segments=100,
                               variant=KernelVariant(simd=False))
        simd = kernel_cycles(core, format_name="bcsr", r=2, c=2,
                             ntiles=1000, nnz_stored=4000,
                             n_segments=100,
                             variant=KernelVariant(simd=True))
        assert simd.issue_cycles < scalar.issue_cycles

    def test_branchless_trades_mispredicts_for_ops(self):
        core = get_machine("Cell (PS3)").core
        branchy = csr_costs(core, 6000, 1000, KernelVariant())
        branchless = csr_costs(core, 6000, 1000,
                               KernelVariant(branchless=True))
        assert branchy.mispredict_cycles > 0
        assert branchless.mispredict_cycles == 0
        assert branchless.issue_cycles > branchy.issue_cycles

    def test_ooo_hides_most_mispredict(self):
        x86 = get_machine("AMD X2").core
        spe = get_machine("Cell (PS3)").core
        a = csr_costs(x86, 6000, 1000, KernelVariant())
        b = csr_costs(spe, 6000, 1000, KernelVariant())
        per_seg_x86 = a.mispredict_cycles / 1000
        per_seg_spe = b.mispredict_cycles / 1000
        assert per_seg_x86 < x86.branch_miss_penalty_cycles
        assert per_seg_spe == pytest.approx(spe.branch_miss_penalty_cycles)


class TestShapes:
    def test_register_blocking_cuts_per_nnz_ops(self):
        core = get_machine("AMD X2").core
        v = optimized_variant(core)
        unblocked = csr_costs(core, 16_000, 1000, v)
        blocked = kernel_cycles(core, format_name="bcsr", r=4, c=4,
                                ntiles=1000, nnz_stored=16_000,
                                n_segments=250, variant=v)
        assert blocked.total_cycles < unblocked.total_cycles

    def test_short_rows_cost_more_per_nnz(self):
        core = get_machine("Cell (PS3)").core
        v = optimized_variant(core)
        long_rows = csr_costs(core, 60_000, 500, v)    # 120 nnz/row
        short_rows = csr_costs(core, 60_000, 15_000, v)  # 4 nnz/row
        assert short_rows.total_cycles > 1.5 * long_rows.total_cycles

    def test_cell_fp_pipe_dominates_dense(self):
        core = get_machine("Cell (PS3)").core
        v = optimized_variant(core)
        costs = kernel_cycles(core, format_name="bcsr", r=2, c=2,
                              ntiles=10_000, nnz_stored=40_000,
                              n_segments=100, variant=v)
        assert costs.fp_cycles > costs.issue_cycles
        # 2 flops per value through the 4/7-per-cycle pipe: 3.5 cyc/nnz.
        assert costs.fp_cycles / 40_000 == pytest.approx(3.5)

    def test_bcoo_charges_scatter(self):
        core = get_machine("AMD X2").core
        v = optimized_variant(core)
        bcsr = kernel_cycles(core, format_name="bcsr", r=1, c=1,
                             ntiles=5000, nnz_stored=5000,
                             n_segments=2500, variant=v)
        bcoo = kernel_cycles(core, format_name="bcoo", r=1, c=1,
                             ntiles=5000, nnz_stored=5000,
                             n_segments=0, variant=v)
        # BCOO pays per-tile scatter but no segment machinery or
        # mispredicts; both must be finite and positive.
        assert bcoo.total_cycles > 0 and bcsr.total_cycles > 0
        assert bcoo.mispredict_cycles == 0

    def test_empty_block_is_free(self):
        core = get_machine("AMD X2").core
        costs = kernel_cycles(core, format_name="csr", r=1, c=1,
                              ntiles=0, nnz_stored=0, n_segments=0)
        assert costs.total_cycles == 0

    def test_negative_counts_rejected(self):
        core = get_machine("AMD X2").core
        with pytest.raises(SimulationError):
            kernel_cycles(core, format_name="csr", r=1, c=1, ntiles=-1,
                          nnz_stored=1, n_segments=1)
