"""Executor composition semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.formats import coo_to_csr, to_cache_blocked
from repro.formats.convert import uniform_block_specs
from repro.machines import PlacementPolicy, get_machine
from repro.simulator.cpu import KernelVariant
from repro.simulator.executor import simulate_plan, simulate_spmv
from repro.simulator.traffic import profile_from_matrix
from tests.conftest import random_coo


def make_profile(machine_name="AMD X2", n_threads=1, m=4000, n=4000,
                 density=0.002, seed=0, block_rows=None):
    coo = random_coo(m, n, density, seed=seed)
    if block_rows:
        mat = to_cache_blocked(
            coo, uniform_block_specs((m, n), block_rows, n)
        )
    else:
        mat = coo_to_csr(coo)
    return profile_from_matrix(mat, get_machine(machine_name),
                               n_threads=n_threads)


class TestComposition:
    def test_result_fields_consistent(self):
        m = get_machine("AMD X2")
        prof = make_profile()
        res = simulate_plan(m, prof, sockets=1, cores_per_socket=1)
        assert res.time_s > 0
        assert res.gflops == pytest.approx(
            2 * prof.nnz_logical / res.time_s / 1e9
        )
        assert res.sustained_gbs == pytest.approx(
            res.traffic.total / res.time_s / 1e9
        )
        assert res.time_s == pytest.approx(
            max(res.compute_time_s, res.memory_time_s)
        )

    def test_inorder_no_prefetch_serializes(self):
        m = get_machine("Niagara")
        prof = make_profile("Niagara")
        res = simulate_plan(m, prof, sockets=1, cores_per_socket=1,
                            sw_prefetch=False)
        # In-order single thread, no usable prefetch: compute + memory.
        assert res.time_s == pytest.approx(
            res.compute_time_s + res.memory_time_s
        )

    def test_cmt_restores_overlap(self):
        m = get_machine("Niagara")
        prof = make_profile("Niagara", n_threads=2, block_rows=2000)
        res = simulate_plan(m, prof, sockets=1, cores_per_socket=1,
                            threads_per_core=2)
        assert res.time_s == pytest.approx(
            max(res.compute_time_s, res.memory_time_s)
        )

    def test_thread_count_mismatch_rejected(self):
        m = get_machine("AMD X2")
        prof = make_profile(n_threads=1)
        with pytest.raises(SimulationError):
            simulate_plan(m, prof, sockets=2, cores_per_socket=2)

    def test_imbalance_slows_memory_time(self):
        m = get_machine("AMD X2")
        # Two blocks of very different size on two threads.
        coo = random_coo(4000, 4000, 0.002, seed=1)
        blocked = to_cache_blocked(
            coo, [(0, 200, 0, 4000), (200, 4000, 0, 4000)]
        )
        uneven = profile_from_matrix(blocked, m, n_threads=2,
                                     thread_of_block=[0, 1])
        res = simulate_plan(m, uneven, sockets=1, cores_per_socket=2)
        assert res.imbalance > 1.5
        # Same blocks, both on one thread's worth each but balanced:
        # compare against the perfectly even assignment of identical
        # traffic (memory time scales with the imbalance factor).
        even = profile_from_matrix(blocked, m, n_threads=2,
                                   thread_of_block=[0, 0])
        even = even.retarget_threads(2)  # greedy: one block per thread
        res_even = simulate_plan(m, even, sockets=1, cores_per_socket=2)
        assert res.memory_time_s >= res_even.memory_time_s

    def test_policy_matters_on_numa(self):
        m = get_machine("AMD X2")
        prof = make_profile(n_threads=4, block_rows=1000)
        fast = simulate_plan(m, prof, policy=PlacementPolicy.NUMA_AWARE)
        slow = simulate_plan(m, prof, policy=PlacementPolicy.SINGLE_NODE)
        assert fast.gflops >= slow.gflops

    def test_variant_affects_inorder_compute(self):
        m = get_machine("Niagara")
        prof = make_profile("Niagara")
        naive = simulate_plan(m, prof, sockets=1, cores_per_socket=1,
                              variant=KernelVariant())
        piped = simulate_plan(
            m, prof, sockets=1, cores_per_socket=1,
            variant=KernelVariant(software_pipelined=True),
        )
        assert piped.compute_time_s < naive.compute_time_s

    def test_bottleneck_labels(self):
        m = get_machine("Cell Blade")
        prof = make_profile("Cell Blade", m=2000, n=2000, density=0.01)
        res = simulate_plan(m, prof, sockets=1, cores_per_socket=1)
        assert res.bottleneck in ("memory", "compute", "latency")


class TestSimulateSpmv:
    def test_wrapper_derives_config(self):
        coo = random_coo(1000, 1000, 0.01, seed=2)
        csr = coo_to_csr(coo)
        res = simulate_spmv(get_machine("Niagara"), csr, n_threads=1)
        assert res.sockets == 1
        assert res.cores_per_socket == 1

    def test_small_matrix_cache_resident(self):
        coo = random_coo(500, 500, 0.02, seed=3)
        csr = coo_to_csr(coo)
        res = simulate_spmv(get_machine("Clovertown"), csr, n_threads=1)
        assert res.cache_resident
