"""The bandwidth model must reproduce Table 4's sustained GB/s column.

Paper values (dense matrix in sparse format):

=============  ========  ===========  ===========
machine        one core  full socket  full system
=============  ========  ===========  ===========
Niagara        0.26       2.06         5.02
Clovertown     3.62       6.56         8.86
AMD X2         5.40       6.61        12.55
Cell (PS3)     3.25      18.35        18.35
Cell Blade     3.25      23.20        31.50
=============  ========  ===========  ===========
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.machines import PlacementPolicy, get_machine
from repro.simulator import sustained_bandwidth
from repro.simulator.memory import cache_resident_bandwidth, per_core_demand_bw

GB = 1e9
REL = 0.12  # model must land within 12% of every measured value


def bw(machine_name, **kw):
    m = get_machine(machine_name)
    return sustained_bandwidth(m, **kw).sustained_bw / GB


class TestTable4:
    def test_niagara_one_thread(self):
        assert bw("Niagara", cores_per_socket=1) == pytest.approx(0.26, rel=REL)

    def test_niagara_eight_cores_one_thread(self):
        assert bw("Niagara", threads_per_core=1) == pytest.approx(2.06, rel=REL)

    def test_niagara_full_cmt(self):
        assert bw("Niagara", threads_per_core=4) == pytest.approx(5.02, rel=REL)

    def test_clovertown_one_core(self):
        assert bw("Clovertown", sockets=1, cores_per_socket=1) == \
            pytest.approx(3.62, rel=REL)

    def test_clovertown_socket(self):
        assert bw("Clovertown", sockets=1) == pytest.approx(6.56, rel=REL)

    def test_clovertown_system(self):
        assert bw("Clovertown") == pytest.approx(8.86, rel=REL)

    def test_amd_one_core(self):
        assert bw("AMD X2", sockets=1, cores_per_socket=1) == \
            pytest.approx(5.40, rel=REL)

    def test_amd_socket(self):
        assert bw("AMD X2", sockets=1) == pytest.approx(6.61, rel=REL)

    def test_amd_system_numa_aware(self):
        assert bw("AMD X2", policy=PlacementPolicy.NUMA_AWARE) == \
            pytest.approx(12.55, rel=REL)

    def test_cell_one_spe(self):
        assert bw("Cell (PS3)", cores_per_socket=1) == \
            pytest.approx(3.25, rel=REL)

    def test_cell_ps3_six_spes(self):
        assert bw("Cell (PS3)") == pytest.approx(18.35, rel=REL)

    def test_cell_blade_socket(self):
        assert bw("Cell Blade", sockets=1) == pytest.approx(23.20, rel=REL)

    def test_cell_blade_interleaved(self):
        # The paper ran 16 SPEs with numactl page interleaving.
        assert bw("Cell Blade", policy=PlacementPolicy.INTERLEAVE) == \
            pytest.approx(31.50, rel=REL)


class TestModelBehavior:
    def test_numa_aware_beats_interleave_beats_single_node(self):
        m = get_machine("Cell Blade")
        aware = sustained_bandwidth(m, policy=PlacementPolicy.NUMA_AWARE)
        inter = sustained_bandwidth(m, policy=PlacementPolicy.INTERLEAVE)
        single = sustained_bandwidth(m, policy=PlacementPolicy.SINGLE_NODE)
        assert aware.sustained_bw > inter.sustained_bw > single.sustained_bw

    def test_single_node_caps_at_one_socket(self):
        m = get_machine("AMD X2")
        single = sustained_bandwidth(m, policy=PlacementPolicy.SINGLE_NODE)
        one = sustained_bandwidth(m, sockets=1)
        assert single.sustained_bw <= one.sustained_bw * 1.01

    def test_prefetch_matters_on_amd_not_clovertown(self):
        amd = get_machine("AMD X2")
        clv = get_machine("Clovertown")
        amd_gain = (
            sustained_bandwidth(amd, sockets=1, cores_per_socket=1).sustained_bw
            / sustained_bandwidth(amd, sockets=1, cores_per_socket=1,
                                  sw_prefetch=False).sustained_bw
        )
        clv_gain = (
            sustained_bandwidth(clv, sockets=1, cores_per_socket=1).sustained_bw
            / sustained_bandwidth(clv, sockets=1, cores_per_socket=1,
                                  sw_prefetch=False).sustained_bw
        )
        assert amd_gain > 1.3
        assert clv_gain < 1.15

    def test_prefetch_irrelevant_with_dma(self):
        m = get_machine("Cell (PS3)")
        a = sustained_bandwidth(m, sw_prefetch=True).sustained_bw
        b = sustained_bandwidth(m, sw_prefetch=False).sustained_bw
        assert a == b

    def test_niagara_thread_scaling_saturates(self):
        one = bw("Niagara", threads_per_core=1)
        two = bw("Niagara", threads_per_core=2)
        four = bw("Niagara", threads_per_core=4)
        assert two == pytest.approx(2 * one, rel=0.05)   # linear to 2
        assert four < 2 * two                            # caps below 4x

    def test_bottleneck_labels(self):
        m = get_machine("Cell Blade")
        one = sustained_bandwidth(m, sockets=1, cores_per_socket=1)
        full = sustained_bandwidth(m, sockets=1)
        assert one.bottleneck == "latency"
        assert full.bottleneck == "dram"

    def test_invalid_configs(self):
        m = get_machine("AMD X2")
        with pytest.raises(SimulationError):
            sustained_bandwidth(m, sockets=3)
        with pytest.raises(SimulationError):
            sustained_bandwidth(m, cores_per_socket=5)
        with pytest.raises(SimulationError):
            sustained_bandwidth(m, threads_per_core=2)

    def test_per_core_demand_positive(self):
        for name in ["AMD X2", "Clovertown", "Niagara", "Cell (PS3)"]:
            assert per_core_demand_bw(get_machine(name)) > 0

    def test_cache_resident_exceeds_dram(self):
        m = get_machine("Clovertown")
        dram = sustained_bandwidth(m).sustained_bw
        llc = cache_resident_bandwidth(
            m, sockets=2, cores_per_socket=4
        )
        assert llc > dram

    def test_cache_resident_zero_for_cell(self):
        m = get_machine("Cell (PS3)")
        assert cache_resident_bandwidth(m, sockets=1, cores_per_socket=6) == 0
