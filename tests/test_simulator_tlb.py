"""TLB model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import get_machine
from repro.machines.model import TLBConfig
from repro.simulator.tlb import (
    max_cols_for_tlb_reach,
    tlb_misses,
    tlb_penalty_seconds,
    unique_pages,
)

TLB = TLBConfig(entries=32, page_bytes=4096, miss_penalty_cycles=25.0)


class TestPages:
    def test_unique_pages(self):
        # 512 doubles per 4KB page.
        assert unique_pages(np.arange(512), 4096) == 1
        assert unique_pages(np.arange(1024), 4096) == 2
        assert unique_pages(np.array([]), 4096) == 0

    def test_scattered_pages(self):
        cols = np.arange(0, 512 * 100, 512)  # one touch per page
        assert unique_pages(cols, 4096) == 100


class TestMisses:
    def test_within_reach_compulsory(self):
        assert tlb_misses(TLB, 10, 100_000) == 10.0

    def test_none_tlb(self):
        assert tlb_misses(None, 10, 100) == 0.0

    def test_thrash_beyond_reach(self):
        within = tlb_misses(TLB, 32, 10_000)
        beyond = tlb_misses(TLB, 320, 10_000)
        assert beyond > 10 * within

    def test_penalty_scales_with_clock(self):
        fast = tlb_penalty_seconds(TLB, 100, 1000, 2e9)
        slow = tlb_penalty_seconds(TLB, 100, 1000, 1e9)
        assert fast == pytest.approx(slow / 2)

    def test_reach_blocking_bound(self):
        cols = max_cols_for_tlb_reach(TLB)
        assert cols == (32 - 4) * 512
        assert max_cols_for_tlb_reach(None) is None


class TestMachineTLBs:
    def test_opteron_blocks_for_small_l1_tlb(self):
        # The Opteron's 32-entry L1 TLB has the smallest reach — the
        # reason the paper found TLB blocking beneficial there.
        amd = get_machine("AMD X2").tlb
        clv = get_machine("Clovertown").tlb
        assert amd.reach_bytes < clv.reach_bytes

    def test_cell_has_no_tlb_model(self):
        assert get_machine("Cell (PS3)").tlb is None
