"""Trace generation and analytic-model validation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.validation import validate_x_traffic, validation_sweep
from repro.errors import SimulationError
from repro.formats import coo_to_csr, to_bcsr
from repro.machines.model import CacheLevel
from repro.simulator.cache import CacheSim
from repro.simulator.trace import (
    bcsr_x_trace,
    csr_spmv_trace,
    default_layout,
)
from tests.conftest import random_coo

CACHE = CacheLevel("test-L2", 64 * 1024, 64, 8, 10.0)
SMALL = CacheLevel("test-L1", 2048, 64, 2, 1.0)


class TestTrace:
    def test_lengths(self):
        coo = random_coo(50, 60, 0.1, seed=1)
        csr = coo_to_csr(coo)
        full = csr_spmv_trace(csr)
        assert len(full) == 3 * csr.nnz_stored + 2 * csr.nrows
        xonly = csr_spmv_trace(csr, include_streams=False)
        assert len(xonly) == csr.nnz_stored

    def test_regions_disjoint(self):
        coo = random_coo(40, 40, 0.1, seed=2)
        csr = coo_to_csr(coo)
        lay = default_layout(csr)
        assert lay.values < lay.indices < lay.pointers < lay.x < lay.y

    def test_x_addresses_match_columns(self):
        coo = random_coo(30, 30, 0.1, seed=3)
        csr = coo_to_csr(coo)
        lay = default_layout(csr)
        xonly = csr_spmv_trace(csr, include_streams=False)
        np.testing.assert_array_equal(
            (xonly - lay.x) // 8, csr.indices.astype(np.int64)
        )

    def test_bcsr_trace_contiguous_per_tile(self):
        coo = random_coo(32, 32, 0.1, seed=4)
        b = to_bcsr(coo, 2, 2)
        trace = bcsr_x_trace(b)
        assert len(trace) == b.ntiles * b.c
        # Within each tile, c consecutive element addresses.
        per_tile = trace.reshape(b.ntiles, b.c)
        assert ((per_tile[:, 1:] - per_tile[:, :-1]) == 8).all()

    def test_type_checks(self):
        coo = random_coo(10, 10, 0.2, seed=5)
        with pytest.raises(SimulationError):
            csr_spmv_trace(coo)
        with pytest.raises(SimulationError):
            bcsr_x_trace(coo_to_csr(coo))

    def test_matrix_streams_are_compulsory_only(self):
        """Streaming the value array through a big cache misses once
        per line — the assumption the footprint accounting rests on."""
        coo = random_coo(60, 60, 0.15, seed=6)
        csr = coo_to_csr(coo)
        lay = default_layout(csr)
        vals = lay.values + np.arange(csr.nnz_stored) * 8
        sim = CacheSim(CACHE)
        sim.access_many(vals)
        expected = -(-csr.nnz_stored * 8 // CACHE.line_bytes)
        assert abs(sim.stats.misses - expected) <= 1


class TestValidation:
    def test_model_within_band_when_fitting(self):
        # x fits the cache: both sides should be near compulsory.
        coo = random_coo(500, 512, 0.05, seed=7)
        csr = coo_to_csr(coo)
        pt = validate_x_traffic(csr, CACHE)
        assert 0.5 <= pt.ratio <= 2.0

    def test_model_within_band_when_thrashing(self):
        coo = random_coo(200, 20_000, 0.01, seed=8)
        csr = coo_to_csr(coo)
        pt = validate_x_traffic(csr, SMALL)
        assert 0.3 <= pt.ratio <= 3.0

    def test_sweep(self):
        mats = {
            f"m{i}": coo_to_csr(random_coo(100, 400, 0.05, seed=10 + i))
            for i in range(3)
        }
        pts = validation_sweep(mats, SMALL)
        assert len(pts) == 3
        assert all(p.exact_x_bytes > 0 for p in pts)
