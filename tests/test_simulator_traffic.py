"""Traffic accounting and plan-profile tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.formats import coo_to_csr, to_bcsr, to_cache_blocked
from repro.formats.convert import uniform_block_specs
from repro.machines import get_machine
from repro.simulator.events import TrafficBreakdown
from repro.simulator.traffic import (
    PlanProfile,
    plan_traffic,
    profile_from_matrix,
)
from tests.conftest import random_coo


class TestTrafficBreakdown:
    def test_addition(self):
        a = TrafficBreakdown(1.0, 2.0, 3.0)
        b = TrafficBreakdown(10.0, 20.0, 30.0)
        c = a + b
        assert c.total == 66.0
        assert c.matrix_bytes == 11.0


class TestProfileFromMatrix:
    def test_flat_matrix_single_block(self):
        coo = random_coo(100, 80, 0.05, seed=1)
        csr = coo_to_csr(coo)
        prof = profile_from_matrix(csr, get_machine("AMD X2"))
        assert len(prof.blocks) == 1
        b = prof.blocks[0]
        assert b.nnz_logical == coo.nnz_logical
        assert b.matrix_bytes == csr.footprint_bytes()
        assert b.format_name == "csr"

    def test_cache_blocked_one_profile_per_block(self):
        coo = random_coo(120, 120, 0.05, seed=2)
        cb = to_cache_blocked(coo, uniform_block_specs((120, 120), 40, 60))
        prof = profile_from_matrix(cb, get_machine("Clovertown"))
        assert len(prof.blocks) == cb.n_blocks
        assert prof.nnz_logical == coo.nnz_logical
        assert prof.matrix_bytes == sum(
            b.matrix.footprint_bytes() for b in cb.blocks
        )

    def test_bcsr_segments_are_tile_rows(self):
        coo = random_coo(64, 64, 0.1, seed=3)
        b = to_bcsr(coo, 4, 4)
        prof = profile_from_matrix(b, get_machine("AMD X2"))
        blk = prof.blocks[0]
        assert blk.format_name == "bcsr"
        assert blk.r == 4 and blk.c == 4
        assert blk.n_segments <= -(-64 // 4)

    def test_thread_assignment_round_robin(self):
        coo = random_coo(120, 120, 0.05, seed=4)
        cb = to_cache_blocked(coo, uniform_block_specs((120, 120), 30, 120))
        prof = profile_from_matrix(cb, get_machine("AMD X2"), n_threads=2)
        threads = {b.thread for b in prof.blocks}
        assert threads == {0, 1}


class TestPlanProfile:
    def _profile(self, n_threads=2):
        coo = random_coo(200, 200, 0.05, seed=5)
        cb = to_cache_blocked(coo, uniform_block_specs((200, 200), 50, 200))
        return profile_from_matrix(cb, get_machine("AMD X2"),
                                   n_threads=n_threads)

    def test_thread_nnz_sums(self):
        prof = self._profile()
        assert prof.thread_nnz().sum() == prof.nnz_logical

    def test_retarget_threads(self):
        prof = self._profile(2)
        re4 = prof.retarget_threads(4)
        assert re4.n_threads == 4
        assert re4.nnz_logical == prof.nnz_logical
        # Greedy rebalance keeps loads sane.
        loads = re4.thread_nnz()
        assert loads.max() <= loads.sum()

    def test_bad_thread_count(self):
        prof = self._profile()
        with pytest.raises(SimulationError):
            prof.retarget_threads(0)

    def test_invalid_block_thread_rejected(self):
        prof = self._profile(2)
        with pytest.raises(SimulationError):
            PlanProfile(prof.shape, prof.blocks, 1)  # block.thread == 1


class TestPlanTraffic:
    def test_total_at_least_matrix_bytes(self):
        coo = random_coo(300, 300, 0.03, seed=6)
        prof = profile_from_matrix(coo_to_csr(coo), get_machine("AMD X2"))
        total, per_thread = plan_traffic(prof, get_machine("AMD X2"))
        assert total.matrix_bytes == prof.matrix_bytes
        assert total.total >= prof.matrix_bytes
        assert per_thread.sum() == pytest.approx(total.total)

    def test_write_allocate_increases_y(self):
        coo = random_coo(300, 300, 0.03, seed=7)
        prof = profile_from_matrix(coo_to_csr(coo), get_machine("AMD X2"))
        wa, _ = plan_traffic(prof, get_machine("AMD X2"),
                             write_allocate=True)
        nwa, _ = plan_traffic(prof, get_machine("AMD X2"),
                              write_allocate=False)
        assert wa.y_bytes == pytest.approx(2 * nwa.y_bytes)

    def test_local_store_charges_x_span(self):
        coo = random_coo(100, 1000, 0.01, seed=8)
        prof = profile_from_matrix(coo_to_csr(coo),
                                   get_machine("Cell (PS3)"))
        total, _ = plan_traffic(prof, get_machine("Cell (PS3)"))
        # Cell DMA pulls the whole x span once: exactly 8 KB for 1000
        # columns.
        assert total.x_bytes == 1000 * 8

    def test_cache_blocking_reduces_x_traffic_on_scattered(self):
        # Tall scattered matrix: the flat layout re-fetches the wide
        # x span every row window; blocking confines each block's
        # footprint to its span so every line is fetched once per block.
        rng = np.random.default_rng(9)
        m_rows, n = 60_000, 400_000
        nnz = 600_000
        from repro.formats import COOMatrix

        coo = COOMatrix((m_rows, n),
                        np.sort(rng.integers(0, m_rows, nnz)),
                        rng.integers(0, n, nnz),
                        rng.standard_normal(nnz))
        m = get_machine("AMD X2")
        flat = profile_from_matrix(coo_to_csr(coo), m)
        flat_traffic, _ = plan_traffic(flat, m)
        cb = to_cache_blocked(
            coo, uniform_block_specs((m_rows, n), m_rows, 32_768)
        )
        blocked = profile_from_matrix(cb, m)
        blocked_traffic, _ = plan_traffic(blocked, m)
        assert blocked_traffic.x_bytes < flat_traffic.x_bytes

    def test_banded_matrix_charged_band_only(self):
        # Long diagonal band: global unique lines exceed the cache but
        # the instantaneous working set is tiny — x traffic must stay
        # near compulsory, NOT near one miss per access.
        n = 300_000
        rows = np.repeat(np.arange(n, dtype=np.int64), 3)
        cols = np.minimum(rows + np.tile(np.arange(3), n), n - 1)
        from repro.formats import COOMatrix

        coo = COOMatrix((n, n), rows, cols, np.ones(len(rows)))
        m = get_machine("AMD X2")
        prof = profile_from_matrix(coo_to_csr(coo), m)
        traffic, _ = plan_traffic(prof, m)
        compulsory = prof.blocks[0].x_unique_lines * 64
        assert traffic.x_bytes <= 2.5 * compulsory
