"""Solver tests: CG, power method, PageRank on library SpMV."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpmvEngine
from repro.errors import ReproError
from repro.formats import COOMatrix, coo_to_csr
from repro.machines import get_machine
from repro.solvers import conjugate_gradient, pagerank, power_method


def spd_matrix(n, seed=0, density=0.05):
    """Random SPD sparse matrix: A = B^T B + n I (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    b = np.zeros((n, n))
    k = max(1, int(n * n * density))
    b[rng.integers(0, n, k), rng.integers(0, n, k)] = rng.standard_normal(k)
    a = b.T @ b + n * np.eye(n)
    return COOMatrix.from_dense(a)


class TestCG:
    def test_solves_spd_system(self, rng):
        a = spd_matrix(60, seed=1)
        x_true = rng.standard_normal(60)
        b = a.toarray() @ x_true
        res = conjugate_gradient(coo_to_csr(a), b, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6)

    def test_residual_history_decreases(self, rng):
        a = spd_matrix(40, seed=2)
        b = rng.standard_normal(40)
        res = conjugate_gradient(coo_to_csr(a), b)
        assert res.residual_history[-1] < res.residual_history[0]

    def test_works_with_tuned_operator(self, rng):
        a = spd_matrix(80, seed=3)
        b = rng.standard_normal(80)
        eng = SpmvEngine(get_machine("AMD X2"))
        tuned = eng.tune(a, n_threads=1)
        res = conjugate_gradient(tuned, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(a.toarray() @ res.x, b, rtol=1e-5,
                                   atol=1e-8)

    def test_operator_form(self, rng):
        a = spd_matrix(30, seed=4)
        dense = a.toarray()
        b = rng.standard_normal(30)
        res = conjugate_gradient((lambda v: dense @ v, 30), b)
        assert res.converged

    def test_zero_rhs(self):
        a = spd_matrix(10, seed=5)
        res = conjugate_gradient(coo_to_csr(a), np.zeros(10))
        assert res.converged
        assert res.iterations == 0

    def test_non_spd_detected(self, rng):
        # A negative-definite matrix breaks p^T A p > 0 immediately.
        a = COOMatrix.from_dense(-np.eye(10))
        res = conjugate_gradient(coo_to_csr(a), np.ones(10), max_iter=5)
        assert not res.converged

    def test_rectangular_rejected(self):
        a = COOMatrix((3, 4), [0], [0], [1.0])
        with pytest.raises(ReproError):
            conjugate_gradient(coo_to_csr(a), np.ones(3))

    def test_wrong_rhs_shape(self):
        a = spd_matrix(10)
        with pytest.raises(ReproError):
            conjugate_gradient(coo_to_csr(a), np.ones(11))

    def test_max_iter_respected(self, rng):
        a = spd_matrix(50, seed=6)
        b = rng.standard_normal(50)
        res = conjugate_gradient(coo_to_csr(a), b, tol=1e-16, max_iter=3)
        assert res.iterations <= 3


class TestPowerMethod:
    def test_dominant_eigenvalue(self):
        d = np.diag([5.0, 2.0, 1.0])
        lam, v, _ = power_method(coo_to_csr(COOMatrix.from_dense(d)))
        assert lam == pytest.approx(5.0, rel=1e-6)
        assert abs(v[0]) == pytest.approx(1.0, rel=1e-4)

    def test_matches_numpy(self, rng):
        a = spd_matrix(30, seed=7)
        lam, _, _ = power_method(coo_to_csr(a), max_iter=5000, tol=1e-12)
        expected = np.linalg.eigvalsh(a.toarray()).max()
        assert lam == pytest.approx(expected, rel=1e-5)

    def test_rejects_rectangular(self):
        a = COOMatrix((3, 4), [0], [0], [1.0])
        with pytest.raises(ReproError):
            power_method(coo_to_csr(a))


class TestPageRank:
    def test_uniform_on_cycle(self):
        n = 5
        links = COOMatrix((n, n), np.arange(n), (np.arange(n) + 1) % n,
                          np.ones(n))
        scores, _ = pagerank(links)
        np.testing.assert_allclose(scores, np.full(n, 1 / n), rtol=1e-6)

    def test_sink_attracts_mass(self):
        # Star: everyone links to node 0.
        n = 6
        links = COOMatrix((n, n), np.arange(1, n), np.zeros(n - 1,
                          dtype=np.int64), np.ones(n - 1))
        scores, _ = pagerank(links)
        assert scores[0] == scores.max()

    def test_scores_sum_to_one(self):
        from tests.conftest import random_coo

        links = random_coo(300, 300, 0.01, seed=8)
        scores, _ = pagerank(links)
        assert scores.sum() == pytest.approx(1.0)
        assert (scores >= 0).all()

    def test_matches_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(9)
        n, k = 40, 160
        r, c = rng.integers(0, n, k), rng.integers(0, n, k)
        # Collapse duplicate edges: nx.DiGraph is simple, so weights
        # must be 0/1 on both sides of the comparison.
        key = np.unique(r * n + c)
        r, c = key // n, key % n
        links = COOMatrix((n, n), r, c, np.ones(len(r)))
        scores, _ = pagerank(links, damping=0.85, tol=1e-12)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(links.row.tolist(), links.col.tolist()))
        nx_scores = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        for i in range(n):
            assert scores[i] == pytest.approx(nx_scores[i], abs=2e-4)

    def test_bad_damping(self):
        links = COOMatrix((2, 2), [0], [1], [1.0])
        with pytest.raises(ReproError):
            pagerank(links, damping=1.5)

    def test_webbase_workload(self):
        from repro.matrices import generate

        links = generate("Webbase", scale=0.01, seed=0)
        scores, iters = pagerank(links, tol=1e-8)
        assert scores.sum() == pytest.approx(1.0)
        assert iters < 200
