"""Tests for the shared low-level utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    ceil_div,
    check_shape,
    dedupe_coo,
    human_bytes,
    segment_sums,
    unique_count,
)
from repro.errors import MatrixFormatError


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,out", [(0, 3, 0), (1, 3, 1), (3, 3, 1),
                                         (4, 3, 2), (9, 3, 3), (10, 3, 4)])
    def test_values(self, a, b, out):
        assert ceil_div(a, b) == out

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 10**9), b=st.integers(1, 10**6))
    def test_property(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a or a == 0
        assert q * b >= a


class TestCheckShape:
    def test_valid(self):
        assert check_shape((3, 4)) == (3, 4)

    def test_negative(self):
        with pytest.raises(MatrixFormatError):
            check_shape((-1, 4))

    def test_not_a_pair(self):
        with pytest.raises(MatrixFormatError):
            check_shape((1, 2, 3))


class TestSegmentSums:
    def test_basic(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        out = segment_sums(v, np.array([0, 2]), 4)
        np.testing.assert_allclose(out, [3.0, 7.0])

    def test_empty_segments(self):
        v = np.array([1.0, 2.0])
        # Segments: [0,0), [0,2), [2,2) → 0, 3, 0.
        out = segment_sums(v, np.array([0, 0, 2]), 2)
        np.testing.assert_allclose(out, [0.0, 3.0, 0.0])

    def test_all_empty(self):
        out = segment_sums(np.zeros(0), np.array([0, 0, 0]), 0)
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0])

    def test_2d(self):
        v = np.arange(8, dtype=np.float64).reshape(4, 2)
        out = segment_sums(v, np.array([0, 1, 3]), 4)
        np.testing.assert_allclose(out, [[0, 1], [6, 8], [6, 7]])

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(0, 50),
           nseg=st.integers(1, 10))
    def test_matches_loop(self, seed, n, nseg):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(n)
        starts = np.sort(rng.integers(0, n + 1, nseg))
        starts[0] = min(starts[0], n)
        out = segment_sums(v, starts, n)
        ends = np.append(starts[1:], n)
        for i, (s, e) in enumerate(zip(starts, ends)):
            np.testing.assert_allclose(out[i], v[s:e].sum(), atol=1e-12)


class TestDedupe:
    def test_sums_duplicates(self):
        r = np.array([1, 0, 1])
        c = np.array([1, 0, 1])
        v = np.array([2.0, 1.0, 3.0])
        rr, cc, vv = dedupe_coo(r, c, v)
        assert list(rr) == [0, 1]
        assert list(vv) == [1.0, 5.0]

    def test_sorts_row_major(self):
        r = np.array([1, 0])
        c = np.array([0, 5])
        v = np.array([1.0, 2.0])
        rr, cc, vv = dedupe_coo(r, c, v)
        assert list(rr) == [0, 1]
        assert list(cc) == [5, 0]

    def test_empty(self):
        z = np.zeros(0, dtype=np.int64)
        rr, cc, vv = dedupe_coo(z, z, np.zeros(0))
        assert len(rr) == 0

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 100))
    def test_dense_equivalence(self, seed, n):
        rng = np.random.default_rng(seed)
        r = rng.integers(0, 10, n)
        c = rng.integers(0, 10, n)
        v = rng.standard_normal(n)
        rr, cc, vv = dedupe_coo(r, c, v)
        dense = np.zeros((10, 10))
        np.add.at(dense, (r, c), v)
        dense2 = np.zeros((10, 10))
        dense2[rr, cc] = vv
        np.testing.assert_allclose(dense, dense2, atol=1e-12)
        # Output is sorted and unique.
        key = rr * 10 + cc
        assert (np.diff(key) > 0).all()


class TestMisc:
    def test_unique_count(self):
        assert unique_count(np.array([1, 1, 2, 3])) == 3
        assert unique_count(np.array([])) == 0

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert human_bytes(3 * 2**20) == "3.0 MiB"
        assert "GiB" in human_bytes(5 * 2**30)
